//! Ghost-layer exchange — the compiled form of Listing 2's guarded edge
//! sends/receives, generalized to any block-distributed dimension of an
//! N-dimensional array, and routed *entirely* through the shared
//! inspector–executor engine (`kali-sched`).
//!
//! The ghost geometry is turned into a [`CommSchedule`] *analytically* —
//! every member derives, with no communication, which of its ghost cells
//! each peer owns and which of its owned cells sit in each peer's ghost
//! skirt — and the fused per-peer value messages are posted and completed
//! by the same [`ScheduleExecutor`] that replays the interpreter's
//! `doall` schedules. Because each ghost cell is fetched directly from
//! its true *owner* (not pipelined through a face neighbour), the
//! corner-completing variant (`corners = true`) refreshes edge and corner
//! ghosts in the same posted exchange, so 9-point stencils can run
//! split-phase; the face-only variant skips the diagonal traffic that
//! 5/7-point stencils never read.
//!
//! Deriving the schedule is host work a real runtime pays per trip:
//! every relevant peer's storage box is walked, so the build is charged
//! to the virtual clock (as inspection time) like the interpreter's
//! inspector pass. The [`HaloCache`] removes it from warm trips: built
//! schedules are stored in `kali-sched`'s [`ScheduleCache`] keyed on
//! `(extents, dists, ghosts, corner policy, distribution generation)`,
//! and a warm exchange replays the cached schedule with the replay
//! consensus vote riding as a one-word header on the fused value
//! messages (`kali-sched`'s optimistic protocol). A disagreement — e.g.
//! a redistribution that bumped the generation — discards the payloads,
//! rolls the trip back to a fresh analytic build, and re-runs the
//! exchange, so stale routes never reach storage.
//!
//! ## Active-team vote gating
//!
//! Every message of an exchange — fused values and the piggybacked vote
//! headers alike — travels over the array's *active team*: the sub-team
//! of grid ranks whose owned block is non-empty in every dimension
//! ([`DistArrayN::active_team`]). Membership is a pure function of the
//! array's geometry, so every member derives the same team with zero
//! communication, and a member owning nothing (a coarse multigrid level
//! leaves most of the machine empty) sends *no* messages at all — in
//! particular no bare `(vote, [])` headers, which on a small coarse team
//! would otherwise cost more traffic than the values themselves.
//! Non-active grid members keep the *collective* cache discipline —
//! analytic builds and stores still happen on every grid member — so the
//! per-site vote gate and the schedule ordinal stream stay SPMD-uniform;
//! on warm trips they note the replay locally instead of voting.
//!
//! One divergence is accepted and documented rather than defended: the
//! actives decide hit-or-rollback by vote, while a non-active member
//! consults only its local cache. A *non-collective* divergence in cache
//! state (which the collective store discipline rules out for every
//! SPMD-uniform program — lookups, stores and evictions all happen on
//! every member in the same order) could therefore desynchronize the
//! replay counters. No communication-free scheme can do better: a
//! processor that exchanges no messages observes no votes.

use std::rc::Rc;

use kali_grid::Dist1;
use kali_machine::{tag, Proc, Team, NS_ARRAY};
use kali_sched::{
    ArraySchedule, CommSchedule, PendingValues, PendingVote, ScheduleCache, ScheduleExecutor,
    ScheduleWorld, SiteKey, NO_VOTE,
};

use crate::arrays::{DistArrayN, Elem};

/// Tag of the fused ghost value messages (one per communicating peer
/// pair per exchange; posting-order matching keeps successive exchanges
/// paired).
const HALO_VALUE_TAG: u64 = tag(NS_ARRAY, 0x0048_6057);

/// The halo's instance of the shared schedule executor.
const EXEC: ScheduleExecutor = ScheduleExecutor::new(HALO_VALUE_TAG);

/// The executor's view of a distributed array: a halo schedule names one
/// array (index 0) and flat indices are global row-major element indices.
impl<T: Elem, const N: usize> ScheduleWorld<T> for DistArrayN<T, N> {
    fn load(&self, _array: usize, flat: u64) -> T {
        let idx = self.global_unflat(flat as usize);
        let s = self
            .storage_index(idx)
            .expect("halo schedule serves owned cells only");
        self.data[s]
    }

    fn store(&mut self, _array: usize, flat: u64, value: T) {
        let idx = self.global_unflat(flat as usize);
        let s = self
            .storage_index(idx)
            .expect("halo schedule scatters into this processor's ghost skirt");
        self.data[s] = value;
    }

    // Batched forms for the executor's hot loops: the canonical skirt
    // walk emits long runs of consecutive flat indices (rows of the
    // storage box), so successive elements usually advance the storage
    // index by one last-dimension stride — the full N-dimensional decode
    // runs only at run breaks.
    fn load_into(&self, _array: usize, flats: &[u64], out: &mut Vec<T>) {
        let row = self.extents[N - 1] as u64;
        let step = self.stride[N - 1];
        let mut prev: Option<(u64, usize)> = None;
        out.reserve(flats.len());
        for &f in flats {
            let s = match prev {
                Some((pf, ps)) if f == pf + 1 && f % row != 0 => ps + step,
                _ => self
                    .storage_index(self.global_unflat(f as usize))
                    .expect("halo schedule serves owned cells only"),
            };
            out.push(self.data[s]);
            prev = Some((f, s));
        }
    }

    fn store_from(&mut self, _array: usize, flats: &[u64], values: &[T]) {
        debug_assert_eq!(flats.len(), values.len());
        let row = self.extents[N - 1] as u64;
        let step = self.stride[N - 1];
        let mut prev: Option<(u64, usize)> = None;
        for (&f, &v) in flats.iter().zip(values) {
            let s = match prev {
                Some((pf, ps)) if f == pf + 1 && f % row != 0 => ps + step,
                _ => self
                    .storage_index(self.global_unflat(f as usize))
                    .expect("halo schedule scatters into this processor's ghost skirt"),
            };
            self.data[s] = v;
            prev = Some((f, s));
        }
    }
}

/// Cache key of an analytic halo schedule. The *site* is a stable hash
/// of the exchange's static shape (rank, extents, ghost widths, corner
/// policy) — the compiled-path analogue of the interpreter's
/// parser-assigned `doall` site id — while the full key adds the index
/// maps and the distribution generation, so a redistribution makes the
/// lookup miss (and the piggybacked vote roll back) instead of
/// replaying a stale route.
#[derive(Clone, PartialEq)]
pub struct HaloKey {
    site: usize,
    team_ranks: Vec<usize>,
    extents: Vec<usize>,
    dists: Vec<Dist1>,
    ghost: Vec<usize>,
    corners: bool,
    generation: u64,
}

impl SiteKey for HaloKey {
    fn site(&self) -> usize {
        self.site
    }
    fn team_ranks(&self) -> &[usize] {
        &self.team_ranks
    }
}

pub(crate) fn fnv1a(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        for byte in w.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Cached analytic halo schedules, shared by every exchange a context
/// issues. One instance lives in `kali-runtime`'s `Ctx`; arrays with the
/// same geometry (e.g. an array and its copy-in snapshot, or the coarse
/// levels successive V-cycles reallocate) share entries, because the
/// schedule is a function of geometry alone.
pub struct HaloCache {
    cache: ScheduleCache<HaloKey>,
}

impl HaloCache {
    pub fn new() -> Self {
        // Sites cycle through at most a couple of keys (generation bumps);
        // the cap is a backstop against unbounded redistribution churn.
        HaloCache {
            cache: ScheduleCache::new(4),
        }
    }

    /// A cache additionally bounded to `max_entries` schedules in total,
    /// with per-`(site, team)` LRU victim selection — the multi-tenant
    /// configuration, where a shape-diverse request stream must not grow
    /// the cache without limit.
    pub fn with_budget(max_entries: usize) -> Self {
        HaloCache {
            cache: ScheduleCache::with_budget(4, max_entries),
        }
    }

    /// Re-cap the global entry budget, evicting LRU entries down to it.
    pub fn set_budget(&mut self, max_entries: usize) {
        self.cache.set_budget(max_entries);
    }

    /// Schedules currently held.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// The global entry budget, if one is set.
    pub fn budget(&self) -> Option<usize> {
        self.cache.budget()
    }
}

impl Default for HaloCache {
    fn default() -> Self {
        Self::new()
    }
}

/// An in-flight split-phase ghost exchange created by
/// [`DistArrayN::begin_exchange_ghosts`] or
/// [`DistArrayN::begin_exchange_ghosts_cached`]. Complete it with the
/// matching finish call on an array of the same shape — usually the
/// array itself, or a same-layout snapshot taken for copy-in/copy-out
/// updates.
#[must_use = "a begun ghost exchange must be completed with finish_exchange_ghosts"]
pub struct PendingHalo<T: Elem> {
    inner: PendingInner<T>,
}

enum PendingInner<T: Elem> {
    /// Not a member of the owning grid (or owning nothing on an uncached
    /// path): nothing was posted.
    Idle,
    /// Pessimistic posted exchange over a (fresh or wrapped) schedule.
    Plain {
        sched: Rc<CommSchedule>,
        pending: PendingValues<T>,
    },
    /// Optimistic posted exchange: vote headers are in flight; `hit` is
    /// the locally cached schedule (None voted [`NO_VOTE`]).
    Vote {
        pending: PendingVote<T>,
        hit: Option<Rc<CommSchedule>>,
        corners: bool,
    },
    /// Active-team gating: a grid member owning nothing sat the vote out.
    /// The collective cache bookkeeping (replay note, or rollback and
    /// rebuild-and-store) runs at finish time, where `&mut self` and the
    /// cache are available.
    Gated { hit: bool, corners: bool },
}

impl<T: Elem> PendingHalo<T> {
    /// Number of ghost value messages still outstanding.
    pub fn len(&self) -> usize {
        match &self.inner {
            PendingInner::Idle | PendingInner::Gated { .. } => 0,
            PendingInner::Plain { pending, .. } => pending.len(),
            PendingInner::Vote { pending, .. } => pending.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T: Elem, const N: usize> DistArrayN<T, N> {
    /// The *active team* of this array: the grid ranks whose owned block
    /// is non-empty in every dimension, in grid-team order. A pure
    /// function of the array's geometry — every member derives the same
    /// team with no communication — so it is safe to route all exchange
    /// traffic (values *and* optimistic vote headers) over it: a rank
    /// owning nothing can neither serve nor request a single ghost cell,
    /// and its vote is implied by the collective cache discipline.
    pub fn active_team(&self) -> Team {
        let team = self.grid.team();
        Team::new(
            team.ranks()
                .iter()
                .copied()
                .filter(|&r| self.rank_participates(r))
                .collect(),
        )
    }

    /// Does rank `r` (a grid member) own a non-empty block of this array?
    fn rank_participates(&self, r: usize) -> bool {
        let Some(rc) = self.grid.coords_of(r) else {
            return false;
        };
        (0..N).all(|d| {
            let qd = match self.spec.grid_dim_of(d) {
                Some(gd) => rc[gd],
                None => 0,
            };
            self.dists[d].local_len(qd) > 0
        })
    }

    /// Blocking ghost exchange: derive the full-skirt (faces, edges and
    /// corners) schedule analytically and run it through the shared
    /// executor's blocking fused value round. Must be called by every
    /// member of the owning grid (SPMD); non-members return immediately.
    ///
    /// Neighbours are determined by *ownership*, not grid adjacency, so
    /// the exchange remains correct on coarse multigrid levels where some
    /// processors own nothing, and for ghost skirts wider than a
    /// neighbour's block.
    pub fn exchange_ghosts(&mut self, proc: &mut Proc) {
        if !self.in_grid() {
            return;
        }
        let sched = self.build_halo_schedule(proc, true);
        if !self.is_participant() {
            return;
        }
        let team = self.active_team();
        EXEC.exchange_blocking(proc, &team, &sched, self);
    }

    /// Split-phase ghost exchange, post half: derive the ghost schedule
    /// analytically, issue the fused per-peer value messages nonblocking
    /// and post the matching receives, then return immediately so the
    /// caller can compute on interior points while the values are in
    /// transit. Must be called by every member of the owning grid (SPMD);
    /// non-members return an empty pending set.
    ///
    /// `corners` selects the corner policy: `false` fetches only the
    /// ghost cells that differ from the owned box in exactly one
    /// dimension (faces — all that 5-point/7-point stencils read);
    /// `true` fetches every global-valid cell of the skirt — faces,
    /// edges *and* corners — directly from its true owner, so 9-point
    /// (2-D) and 27-point (3-D) stencils can overlap the transit too.
    pub fn begin_exchange_ghosts(&self, proc: &mut Proc, corners: bool) -> PendingHalo<T> {
        if !self.in_grid() {
            return PendingHalo {
                inner: PendingInner::Idle,
            };
        }
        let sched = Rc::new(self.build_halo_schedule(proc, corners));
        if !self.is_participant() {
            return PendingHalo {
                inner: PendingInner::Idle,
            };
        }
        let team = self.active_team();
        let pending = EXEC.post(proc, &team, &sched, self);
        PendingHalo {
            inner: PendingInner::Plain { sched, pending },
        }
    }

    /// Split-phase ghost exchange, completion half: wait for every posted
    /// value message and scatter it into this array's ghost skirt. `self`
    /// must have the shape the exchange was begun with (the array itself
    /// or a same-layout clone).
    pub fn finish_exchange_ghosts(&mut self, proc: &mut Proc, pending: PendingHalo<T>) {
        match pending.inner {
            PendingInner::Idle => {}
            PendingInner::Plain { sched, pending } => {
                let team = self.active_team();
                EXEC.complete(proc, &team, &sched, self, pending);
            }
            PendingInner::Vote { .. } | PendingInner::Gated { .. } => {
                panic!(
                    "a cached ghost exchange must be completed with finish_exchange_ghosts_cached"
                )
            }
        }
    }

    /// Derive the ghost [`CommSchedule`] analytically and charge the
    /// walk (every relevant rank's storage box) to the virtual clock as
    /// inspection work, mirroring the interpreter's inspector pass.
    fn build_halo_schedule(&self, proc: &mut Proc, corners: bool) -> CommSchedule {
        let t0 = proc.clock();
        proc.note_inspector_run();
        let (sched, cells_walked) = self.halo_schedule(corners);
        proc.memop(cells_walked as f64);
        let dt = proc.clock() - t0;
        proc.attribute_inspector_time(dt);
        sched
    }

    /// The cache key of this array's ghost schedule under `corners`.
    fn halo_key(&self, corners: bool) -> HaloKey {
        let site = fnv1a(
            std::iter::once(N as u64)
                .chain(self.extents.iter().map(|&e| e as u64))
                .chain(self.ghost.iter().map(|&g| g as u64))
                .chain(std::iter::once(corners as u64)),
        ) as usize;
        HaloKey {
            site,
            team_ranks: self.grid.team().ranks().to_vec(),
            extents: self.extents.to_vec(),
            dists: self.dists.to_vec(),
            ghost: self.ghost.to_vec(),
            corners,
            generation: self.generation,
        }
    }

    /// Derive the ghost [`CommSchedule`]: every member walks each rank's
    /// storage box (owned block plus ghost skirt, clipped to the global
    /// extents) in the same canonical row-major order, so the requesting
    /// side and every serving side agree on the per-pair element
    /// sequences without a request round. Returns the schedule plus the
    /// number of cells walked (the work the build is charged for).
    ///
    /// The per-peer vectors are indexed by *active-team* position (see
    /// [`DistArrayN::active_team`]): ranks owning nothing can appear on
    /// neither side of a ghost transfer, and dropping their slots lets
    /// every exchange path — including the optimistic vote — run over the
    /// active team alone.
    fn halo_schedule(&self, corners: bool) -> (CommSchedule, usize) {
        let team = self.active_team();
        let q = team.len();
        let mut my_reqs: Vec<Vec<u64>> = vec![Vec::new(); q];
        let mut incoming: Vec<Vec<u64>> = vec![Vec::new(); q];
        let mut cells_walked = 0usize;
        if self.ghost.iter().any(|&g| g > 0) && self.is_participant() {
            // My own skirt: what I request of each cell's owner.
            cells_walked += self.walk_skirt(&self.qs, corners, &mut |g| {
                let oi = team
                    .index_of(self.owner_rank(g))
                    .expect("every owner belongs to the owning grid");
                my_reqs[oi].push(self.global_flat(g) as u64);
            });
            // Peers whose widened (skirted) box can overlap my owned
            // block: what each will request of me. Every other rank
            // exchanges nothing with us, so its box is never walked.
            for ti in 0..q {
                let r = team.rank(ti);
                if r == self.rank {
                    continue;
                }
                let Some(rc) = self.grid.coords_of(r) else {
                    continue;
                };
                let mut qs = [0usize; N];
                let mut relevant = true;
                for d in 0..N {
                    let qd = match self.spec.grid_dim_of(d) {
                        Some(gd) => rc[gd],
                        None => 0,
                    };
                    qs[d] = qd;
                    let dist = self.dists[d];
                    let len = dist.local_len(qd);
                    relevant &= len > 0;
                    if dist.is_contiguous() {
                        // Interval prefilter; non-contiguous dims (ghost
                        // width 0 there) are conservatively kept.
                        let lo = dist.lower(qd).unwrap_or(0);
                        let skirt_lo = lo.saturating_sub(self.ghost[d]);
                        let skirt_hi = lo + len + self.ghost[d];
                        relevant &= skirt_lo < self.lo[d] + self.len[d] && self.lo[d] < skirt_hi;
                    }
                }
                if !relevant {
                    continue;
                }
                cells_walked += self.walk_skirt(&qs, corners, &mut |g| {
                    if self.owner_rank(g) == self.rank {
                        incoming[ti].push(self.global_flat(g) as u64);
                    }
                });
            }
        }
        let sched = CommSchedule {
            arrays: vec![ArraySchedule {
                name: "ghosts".into(),
                my_reqs,
                incoming,
                origin: 0,
            }],
            write_hint: 0,
            boundary: Vec::new(),
        };
        (sched, cells_walked)
    }

    /// Visit the global-valid ghost-skirt cells of the block owned by the
    /// processor at per-dimension coordinates `qs`, in canonical
    /// (row-major, ascending) order: cells of its storage box that lie
    /// outside its owned set — all of them when `corners`, else only
    /// those outside in exactly one dimension. Along a contiguous
    /// (block/local) dimension the storage box is the owned interval
    /// widened by the ghost width and clipped to the extents; along a
    /// non-contiguous dimension (necessarily ghost-free) it is exactly
    /// the owned index list. Returns the size of the walked box.
    fn walk_skirt(&self, qs: &[usize; N], corners: bool, f: &mut impl FnMut([usize; N])) -> usize {
        // Per dimension: the global indices of the storage box, each
        // tagged with whether the processor owns it along that dimension.
        let dims: [Vec<(usize, bool)>; N] = std::array::from_fn(|d| {
            let dist = self.dists[d];
            if dist.is_contiguous() {
                let len = dist.local_len(qs[d]);
                let lo = dist.lower(qs[d]).unwrap_or(0);
                let start = lo.saturating_sub(self.ghost[d]);
                let end = (lo + len + self.ghost[d]).min(self.extents[d]);
                (start..end).map(|g| (g, g >= lo && g < lo + len)).collect()
            } else {
                debug_assert_eq!(self.ghost[d], 0, "ghosts require contiguous dims");
                dist.owned(qs[d]).map(|g| (g, true)).collect()
            }
        });
        fn rec<const N: usize>(
            dims: &[Vec<(usize, bool)>; N],
            d: usize,
            corners: bool,
            idx: &mut [usize; N],
            outside: usize,
            f: &mut impl FnMut([usize; N]),
        ) {
            if d == N {
                if outside > 0 && (corners || outside == 1) {
                    f(*idx);
                }
                return;
            }
            for &(g, inside) in &dims[d] {
                idx[d] = g;
                rec(dims, d + 1, corners, idx, outside + usize::from(!inside), f);
            }
        }
        let mut idx = [0usize; N];
        rec(&dims, 0, corners, &mut idx, 0, f);
        dims.iter().map(Vec::len).product()
    }
}

impl<T: Elem, const N: usize> DistArrayN<T, N> {
    /// The cold/rollback protocol shared by every cached blocking path:
    /// derive the schedule analytically (charged as inspection work),
    /// run the fused blocking value round through the executor, and
    /// store the schedule for later replays. The build and store run on
    /// *every* grid member — the collective discipline that keeps the
    /// vote gate and ordinal stream SPMD-uniform — while the value round
    /// moves over the active team only.
    fn rebuild_and_exchange(&mut self, proc: &mut Proc, cache: &mut HaloCache, corners: bool) {
        let key = self.halo_key(corners);
        let sched = self.build_halo_schedule(proc, corners);
        if self.is_participant() {
            let team = self.active_team();
            EXEC.exchange_blocking(proc, &team, &sched, self);
        }
        cache.cache.store(key, sched);
        proc.note_schedule_evictions(cache.cache.take_evictions());
    }

    /// Blocking ghost exchange through the [`HaloCache`]: a warm trip
    /// replays the cached schedule with the replay vote carried on the
    /// fused value round ([`ScheduleExecutor::exchange_optimistic_blocking`])
    /// over the active team, a cold trip builds analytically, exchanges,
    /// and stores. A grid member owning nothing exchanges no messages at
    /// all (active-team gating) and keeps only the collective cache
    /// bookkeeping.
    pub fn exchange_ghosts_cached(
        &mut self,
        proc: &mut Proc,
        cache: &mut HaloCache,
        corners: bool,
    ) {
        if !self.in_grid() {
            return;
        }
        let key = self.halo_key(corners);
        if cache.cache.has_site_team(key.site(), key.team_ranks()) {
            if !self.is_participant() {
                // Gated out of the vote: decide replay-or-rollback from
                // the local cache alone (collective stores keep it in
                // step with the actives' verdict).
                match cache.cache.lookup(&key) {
                    Some(_) => {
                        proc.note_schedule_replay();
                        proc.note_optimistic_hit();
                        return;
                    }
                    None => proc.note_rollback(),
                }
            } else {
                let team = self.active_team();
                let local = cache.cache.lookup(&key);
                let vote = local.as_ref().map_or(NO_VOTE, |(seq, _)| *seq as i64);
                let hit = local.as_ref().map(|(_, s)| (s.as_ref(), &*self));
                let outcome = EXEC.exchange_optimistic_blocking(proc, &team, vote, hit);
                match (outcome.agreed, local) {
                    (Some(seq), Some((cached_seq, sched))) => {
                        debug_assert_eq!(cached_seq, seq);
                        proc.note_schedule_replay();
                        proc.note_optimistic_hit();
                        EXEC.scatter_agreed(proc, &sched, self, &outcome);
                        return;
                    }
                    _ => proc.note_rollback(),
                }
            }
        }
        self.rebuild_and_exchange(proc, cache, corners);
    }

    /// Split-phase ghost exchange through the [`HaloCache`], post half.
    /// A warm trip posts the cached schedule's fused value messages with
    /// the replay vote as a one-word header over the active team — no
    /// analytic rebuild, no dedicated vote round; a cold trip builds
    /// analytically, stores, and posts pessimistically (the store is
    /// collective per site and team, so the vote gate stays
    /// SPMD-uniform). Complete with
    /// [`DistArrayN::finish_exchange_ghosts_cached`].
    pub fn begin_exchange_ghosts_cached(
        &self,
        proc: &mut Proc,
        cache: &mut HaloCache,
        corners: bool,
    ) -> PendingHalo<T> {
        if !self.in_grid() {
            return PendingHalo {
                inner: PendingInner::Idle,
            };
        }
        let key = self.halo_key(corners);
        if cache.cache.has_site_team(key.site(), key.team_ranks()) {
            let local = cache.cache.lookup(&key);
            if !self.is_participant() {
                // Gated out of the vote; the (possibly collective-
                // rollback) bookkeeping needs `&mut self`, so it runs at
                // finish time.
                return PendingHalo {
                    inner: PendingInner::Gated {
                        hit: local.is_some(),
                        corners,
                    },
                };
            }
            let team = self.active_team();
            let vote = local.as_ref().map_or(NO_VOTE, |(seq, _)| *seq as i64);
            let hit = local.as_ref().map(|(_, s)| (s.as_ref(), &*self));
            let pending = EXEC.post_optimistic(proc, &team, vote, hit);
            return PendingHalo {
                inner: PendingInner::Vote {
                    pending,
                    hit: local.map(|(_, s)| s),
                    corners,
                },
            };
        }
        let sched = self.build_halo_schedule(proc, corners);
        if !self.is_participant() {
            cache.cache.store(key, sched);
            proc.note_schedule_evictions(cache.cache.take_evictions());
            return PendingHalo {
                inner: PendingInner::Idle,
            };
        }
        let team = self.active_team();
        let pending = EXEC.post(proc, &team, &sched, self);
        let (_, sched) = cache.cache.store(key, sched);
        proc.note_schedule_evictions(cache.cache.take_evictions());
        PendingHalo {
            inner: PendingInner::Plain { sched, pending },
        }
    }

    /// Completion half of [`DistArrayN::begin_exchange_ghosts_cached`].
    /// On vote agreement the payloads scatter into the skirt; on a
    /// rollback (e.g. a redistribution bumped the generation under a
    /// still-gated site) the stale payloads are discarded and the whole
    /// exchange re-runs from a fresh analytic build — reading `self`'s
    /// *current* owned values, so copy-in/copy-out snapshots stay exact.
    pub fn finish_exchange_ghosts_cached(
        &mut self,
        proc: &mut Proc,
        cache: &mut HaloCache,
        pending: PendingHalo<T>,
    ) {
        match pending.inner {
            PendingInner::Idle => {}
            PendingInner::Plain { sched, pending } => {
                let team = self.active_team();
                EXEC.complete(proc, &team, &sched, self, pending);
            }
            PendingInner::Gated { hit, corners } => {
                if hit {
                    proc.note_schedule_replay();
                    proc.note_optimistic_hit();
                } else {
                    proc.note_rollback();
                    self.rebuild_and_exchange(proc, cache, corners);
                }
            }
            PendingInner::Vote {
                pending,
                hit,
                corners,
            } => {
                let outcome = EXEC.complete_optimistic(proc, pending);
                match (outcome.agreed, hit) {
                    (Some(_), Some(sched)) => {
                        proc.note_schedule_replay();
                        proc.note_optimistic_hit();
                        EXEC.scatter_agreed(proc, &sched, self, &outcome);
                    }
                    _ => {
                        proc.note_rollback();
                        self.rebuild_and_exchange(proc, cache, corners);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kali_grid::{DistSpec, ProcGrid};
    use kali_machine::{CostModel, Machine, MachineConfig};
    use std::time::Duration;

    fn cfg(p: usize) -> MachineConfig {
        MachineConfig::new(p)
            .with_cost(CostModel::unit())
            .with_watchdog(Duration::from_secs(10))
    }

    #[test]
    fn one_d_halo_brings_in_neighbours() {
        let run = Machine::run(cfg(4), |proc| {
            let g = ProcGrid::new_1d(4);
            let spec = DistSpec::block1();
            let mut a =
                crate::DistArray1::from_fn(proc.rank(), &g, &spec, [16], [1], |[i]| i as f64);
            a.exchange_ghosts(proc);
            // After the exchange each proc can read one element past its block.
            let lo = a.owned_range(0).start;
            let hi = a.owned_range(0).end;
            let left = if lo > 0 { a.at(lo - 1) } else { -1.0 };
            let right = if hi < 16 { a.at(hi) } else { -1.0 };
            (left, right)
        });
        assert_eq!(run.results[0], (-1.0, 4.0));
        assert_eq!(run.results[1], (3.0, 8.0));
        assert_eq!(run.results[2], (7.0, 12.0));
        assert_eq!(run.results[3], (11.0, -1.0));
        // 3 interior boundaries, 2 messages each: the executor's blocking
        // round moves no message between pairs without scheduled traffic.
        assert_eq!(run.report.total_msgs, 6);
    }

    #[test]
    fn two_d_halo_fills_edges_and_corners() {
        let run = Machine::run(cfg(4), |proc| {
            let g = ProcGrid::new_2d(2, 2);
            let spec = DistSpec::block2();
            let mut a =
                crate::DistArray2::from_fn(proc.rank(), &g, &spec, [8, 8], [1, 1], |[i, j]| {
                    (10 * i + j) as f64
                });
            a.exchange_ghosts(proc);
            a
        });
        // Rank 0 owns [0..4)x[0..4). Its ghosts now hold row 4, column 4 and
        // the corner (4,4).
        let a0 = &run.results[0];
        assert_eq!(a0.at(4, 2), 42.0);
        assert_eq!(a0.at(2, 4), 24.0);
        assert_eq!(a0.at(4, 4), 44.0);
        // Rank 3 owns [4..8)x[4..8); sees (3,3) after the exchange.
        let a3 = &run.results[3];
        assert_eq!(a3.at(3, 3), 33.0);
        assert_eq!(a3.at(3, 4), 34.0);
    }

    #[test]
    fn wider_ghosts() {
        let run = Machine::run(cfg(2), |proc| {
            let g = ProcGrid::new_1d(2);
            let spec = DistSpec::block1();
            let mut a =
                crate::DistArray1::from_fn(proc.rank(), &g, &spec, [12], [2], |[i]| i as f64);
            a.exchange_ghosts(proc);
            a
        });
        let a0 = &run.results[0];
        assert_eq!(a0.at(6), 6.0);
        assert_eq!(a0.at(7), 7.0);
        let a1 = &run.results[1];
        assert_eq!(a1.at(4), 4.0);
        assert_eq!(a1.at(5), 5.0);
    }

    #[test]
    fn empty_owners_are_skipped() {
        // 3 elements over 4 procs: one proc owns nothing; ownership-based
        // neighbouring must hop over it.
        let run = Machine::run(cfg(4), |proc| {
            let g = ProcGrid::new_1d(4);
            let spec = DistSpec::block1();
            let mut a =
                crate::DistArray1::from_fn(proc.rank(), &g, &spec, [3], [1], |[i]| i as f64 + 1.0);
            a.exchange_ghosts(proc);
            a
        });
        // Owners are whichever 3 procs hold one element each; each nonempty
        // proc must see its ownership neighbour's value.
        let mut seen = 0;
        for a in &run.results {
            if a.is_participant() {
                let lo = a.owned_range(0).start;
                if lo > 0 {
                    assert_eq!(a.at(lo - 1), lo as f64);
                }
                seen += 1;
            }
        }
        assert_eq!(seen, 3);
    }

    #[test]
    fn mg3_layout_halo_is_planes_only() {
        // dist (*, block, block): halos along y and z; the x dimension is
        // local so a full pencil travels per message.
        let run = Machine::run(cfg(4), |proc| {
            let g = ProcGrid::new_2d(2, 2);
            let spec = DistSpec::local_block_block();
            let mut a = crate::DistArray3::from_fn(
                proc.rank(),
                &g,
                &spec,
                [4, 4, 4],
                [0, 1, 1],
                |[i, j, k]| (100 * i + 10 * j + k) as f64,
            );
            a.exchange_ghosts(proc);
            a
        });
        let a0 = &run.results[0]; // owns y in [0..2), z in [0..2), all of x
        assert_eq!(a0.at(3, 2, 1), 321.0); // y-ghost
        assert_eq!(a0.at(3, 1, 2), 312.0); // z-ghost
        assert_eq!(a0.at(2, 2, 2), 222.0); // corner pencil
    }

    #[test]
    fn split_phase_halo_matches_blocking_off_corners() {
        // 1-D distribution: no corner ghosts exist, so the split-phase
        // exchange must be bit-identical to the blocking one.
        let run = Machine::run(cfg(4), |proc| {
            let g = ProcGrid::new_1d(4);
            let spec = DistSpec::block1();
            let mut a =
                crate::DistArray1::from_fn(proc.rank(), &g, &spec, [16], [1], |[i]| i as f64);
            let mut b = a.clone();
            a.exchange_ghosts(proc);
            let pending = b.begin_exchange_ghosts(proc, false);
            proc.compute(100.0); // interior work while strips travel
            b.finish_exchange_ghosts(proc, pending);
            (a, b)
        });
        for (a, b) in &run.results {
            assert_eq!(a.data, b.data);
        }
        // The compute between begin and finish hid transit.
        assert!(run.report.overlap_hidden_seconds > 0.0);
    }

    #[test]
    fn split_phase_halo_fills_edges_on_2d_grids() {
        // block2: the face ghosts must match the blocking exchange; only
        // the corner cells (which 5-point stencils never read) may differ.
        let run = Machine::run(cfg(4), |proc| {
            let g = ProcGrid::new_2d(2, 2);
            let spec = DistSpec::block2();
            let mut a =
                crate::DistArray2::from_fn(proc.rank(), &g, &spec, [8, 8], [1, 1], |[i, j]| {
                    (10 * i + j) as f64
                });
            let pending = a.begin_exchange_ghosts(proc, false);
            a.finish_exchange_ghosts(proc, pending);
            a
        });
        let a0 = &run.results[0]; // owns [0..4)x[0..4)
        assert_eq!(a0.at(4, 2), 42.0); // face ghost below
        assert_eq!(a0.at(2, 4), 24.0); // face ghost right
        let a3 = &run.results[3]; // owns [4..8)x[4..8)
        assert_eq!(a3.at(3, 4), 34.0);
        assert_eq!(a3.at(4, 3), 43.0);
    }

    #[test]
    fn full_halo_matches_blocking_including_corners() {
        // The corner-completing split-phase exchange must reproduce the
        // blocking exchange bitwise on the whole storage box — faces,
        // edges and corners — so 9-point stencils can go split-phase.
        let run = Machine::run(cfg(4), |proc| {
            let g = ProcGrid::new_2d(2, 2);
            let spec = DistSpec::block2();
            let mut a =
                crate::DistArray2::from_fn(proc.rank(), &g, &spec, [8, 8], [1, 1], |[i, j]| {
                    (10 * i + j) as f64
                });
            let mut b = a.clone();
            a.exchange_ghosts(proc);
            let pending = b.begin_exchange_ghosts(proc, true);
            proc.compute(50.0);
            b.finish_exchange_ghosts(proc, pending);
            (a, b)
        });
        // Every global-valid cell of each storage box agrees.
        for (rank, (a, b)) in run.results.iter().enumerate() {
            for i in 0..8 {
                for j in 0..8 {
                    match (a.try_get([i, j]), b.try_get([i, j])) {
                        (Some(x), Some(y)) => {
                            assert_eq!(x.to_bits(), y.to_bits(), "rank {rank} ({i},{j})")
                        }
                        (None, None) => {}
                        other => panic!("rank {rank} ({i},{j}): visibility differs {other:?}"),
                    }
                }
            }
        }
        // The diagonal corner travelled: rank 0 sees (4,4) from rank 3.
        assert_eq!(run.results[0].1.at(4, 4), 44.0);
        assert_eq!(run.results[3].1.at(3, 3), 33.0);
        assert!(run.report.overlap_hidden_seconds > 0.0);
    }

    #[test]
    fn full_halo_on_3d_fills_edge_pencils() {
        // dist (*, block, block): the (y, z) edge ghosts are diagonal
        // traffic; the full halo must fetch them from the diagonal owner.
        let run = Machine::run(cfg(4), |proc| {
            let g = ProcGrid::new_2d(2, 2);
            let spec = DistSpec::local_block_block();
            let mut a = crate::DistArray3::from_fn(
                proc.rank(),
                &g,
                &spec,
                [4, 4, 4],
                [0, 1, 1],
                |[i, j, k]| (100 * i + 10 * j + k) as f64,
            );
            let pending = a.begin_exchange_ghosts(proc, true);
            a.finish_exchange_ghosts(proc, pending);
            a
        });
        let a0 = &run.results[0]; // owns y in [0..2), z in [0..2), all of x
        assert_eq!(a0.at(3, 2, 1), 321.0); // y-face
        assert_eq!(a0.at(3, 1, 2), 312.0); // z-face
        assert_eq!(a0.at(2, 2, 2), 222.0); // diagonal edge pencil
    }

    #[test]
    fn halo_on_an_array_with_a_cyclic_unghosted_dim() {
        // dist (cyclic, block) with ghosts only along the block dim: the
        // cyclic dimension's storage is its owned index list, not an
        // interval, so the analytic schedule must enumerate owned
        // indices there — and both sides must agree on the order.
        let run = Machine::run(cfg(4), |proc| {
            let g = ProcGrid::new_2d(2, 2);
            let spec = DistSpec::parse("(cyclic, block)").unwrap();
            let mut a =
                crate::DistArray2::from_fn(proc.rank(), &g, &spec, [6, 8], [0, 1], |[i, j]| {
                    (10 * i + j) as f64
                });
            let mut b = a.clone();
            a.exchange_ghosts(proc);
            let pending = b.begin_exchange_ghosts(proc, false);
            b.finish_exchange_ghosts(proc, pending);
            (a, b)
        });
        for (rank, (a, b)) in run.results.iter().enumerate() {
            for i in 0..6 {
                for j in 0..8 {
                    assert_eq!(
                        a.try_get([i, j]),
                        b.try_get([i, j]),
                        "rank {rank} ({i},{j})"
                    );
                }
            }
        }
        // Rank 0 owns rows {0, 2, 4} and cols [0..4): its j-ghost at
        // (2, 4) must hold the value from the col-neighbour (rank 1).
        assert_eq!(run.results[0].1.try_get([2, 4]), Some(24.0));
    }

    #[test]
    fn ghosts_wider_than_a_block_fetch_from_the_true_owner() {
        // 8 elements over 4 procs with ghost width 2: each skirt spans
        // two neighbouring blocks, so the outer ghost layer's owner is
        // two hops away. The ownership-routed schedule fetches it
        // directly; a strip pipeline could not.
        let run = Machine::run(cfg(4), |proc| {
            let g = ProcGrid::new_1d(4);
            let spec = DistSpec::block1();
            let mut a =
                crate::DistArray1::from_fn(proc.rank(), &g, &spec, [8], [2], |[i]| i as f64);
            let pending = a.begin_exchange_ghosts(proc, false);
            a.finish_exchange_ghosts(proc, pending);
            a
        });
        let a1 = &run.results[1]; // owns [2..4)
        assert_eq!(a1.at(0), 0.0, "outer low ghost from rank 0");
        assert_eq!(a1.at(1), 1.0);
        assert_eq!(a1.at(4), 4.0);
        assert_eq!(a1.at(5), 5.0, "outer high ghost from rank 3");
    }

    #[test]
    fn finish_on_a_snapshot_lands_ghosts_in_the_snapshot() {
        // The copy-in/copy-out pattern: begin on the live array, snapshot,
        // finish into the snapshot so the update reads fresh ghosts while
        // writing the live array.
        let run = Machine::run(cfg(2), |proc| {
            let g = ProcGrid::new_1d(2);
            let spec = DistSpec::block1();
            let mut a =
                crate::DistArray1::from_fn(proc.rank(), &g, &spec, [8], [1], |[i]| i as f64);
            let pending = a.begin_exchange_ghosts(proc, false);
            let mut old = a.clone();
            // Mutate the live array before completing: the snapshot must
            // still receive the pre-mutation neighbour values.
            a.map_owned(|_, v| v + 100.0);
            old.finish_exchange_ghosts(proc, pending);
            old
        });
        assert_eq!(run.results[0].at(4), 4.0, "ghost from the right block");
        assert_eq!(run.results[1].at(3), 3.0, "ghost from the left block");
    }

    #[test]
    fn halo_traffic_is_deterministic() {
        let go = || {
            Machine::run(cfg(4), |proc| {
                let g = ProcGrid::new_2d(2, 2);
                let spec = DistSpec::block2();
                let mut a = crate::DistArray2::from_fn(
                    proc.rank(),
                    &g,
                    &spec,
                    [16, 16],
                    [1, 1],
                    |[i, j]| (i * j) as f64,
                );
                a.exchange_ghosts(proc);
            })
        };
        let a = go();
        let b = go();
        assert_eq!(a.report.elapsed, b.report.elapsed);
        assert_eq!(a.report.total_words, b.report.total_words);
    }

    #[test]
    fn cached_halo_replays_warm_trips_from_the_cache() {
        // Same geometry, many trips: one analytic build per processor,
        // every later trip a piggybacked-vote replay with zero rollbacks
        // and bitwise-identical skirts.
        let trips = 5usize;
        let run = Machine::run(cfg(4), move |proc| {
            let g = ProcGrid::new_2d(2, 2);
            let spec = DistSpec::block2();
            let mut cache = HaloCache::new();
            let mut a =
                crate::DistArray2::from_fn(proc.rank(), &g, &spec, [8, 8], [1, 1], |[i, j]| {
                    (10 * i + j) as f64
                });
            let mut b = a.clone();
            for _ in 0..trips {
                a.exchange_ghosts(proc);
                let pending = b.begin_exchange_ghosts_cached(proc, &mut cache, true);
                b.finish_exchange_ghosts_cached(proc, &mut cache, pending);
            }
            assert_eq!(a.data, b.data);
            (
                proc.stats().inspector_runs,
                proc.stats().optimistic_hits,
                proc.stats().rollbacks,
            )
        });
        for (builds, hits, rollbacks) in &run.results {
            // `a` rebuilds per trip; the cached `b` builds exactly once.
            assert_eq!(*builds, trips as u64 + 1);
            assert_eq!(*hits, trips as u64 - 1);
            assert_eq!(*rollbacks, 0);
        }
    }

    #[test]
    fn colliding_site_hashes_neither_cross_hit_nor_split_the_gate() {
        // Force two *distinct* halo shapes onto one site id — what an
        // fnv1a shape-hash collision would produce. The full key still
        // carries the real geometry, so the colliding shapes must never
        // serve each other's schedules; and since the gate and ordinal
        // stream are per (site, team) — not per key — a collision shares
        // them rather than splitting them, exactly like any other pair of
        // keys at one site.
        let team = vec![0usize, 1];
        let mk = |extents: Vec<usize>| HaloKey {
            site: 0xC011_1DED,
            team_ranks: team.clone(),
            extents,
            dists: vec![],
            ghost: vec![1, 1],
            corners: true,
            generation: 0,
        };
        let sched = |words: usize| CommSchedule {
            arrays: vec![ArraySchedule {
                name: "ghosts".into(),
                my_reqs: vec![vec![7; words], vec![]],
                incoming: vec![vec![], vec![]],
                origin: 0,
            }],
            write_hint: 0,
            boundary: vec![],
        };
        let mut cache = HaloCache::new();
        let small = mk(vec![16, 16]);
        let large = mk(vec![32, 32]);
        cache.cache.store(small.clone(), sched(1));
        // The gate is up for *both* shapes (same site, same team)...
        assert!(cache.cache.has_site_team(small.site(), small.team_ranks()));
        assert!(cache.cache.has_site_team(large.site(), large.team_ranks()));
        // ...but the colliding shape must not hit the other's schedule.
        assert!(cache.cache.lookup(&large).is_none());
        // Storing it joins the shared ordinal stream (seq 2, not a fresh
        // gate counting from 1), and each key keeps its own schedule.
        let (seq, _) = cache.cache.store(large.clone(), sched(2));
        assert_eq!(seq, 2);
        let (sa, a) = cache.cache.lookup(&small).unwrap();
        let (sb, b) = cache.cache.lookup(&large).unwrap();
        assert_eq!((sa, a.words_expected()), (1, 1));
        assert_eq!((sb, b.words_expected()), (2, 2));
    }

    #[test]
    fn halo_budget_bounds_entries_and_counts_evictions() {
        // Shape-diverse trips through a budgeted cache: the entry count
        // stays at the budget and the overflow shows up in the eviction
        // counter (drained into ProcStats at the store sites).
        let shapes = 6usize;
        let budget = 3usize;
        let run = Machine::run(cfg(2), move |proc| {
            let g = ProcGrid::new_1d(2);
            let spec = DistSpec::block1();
            let mut cache = HaloCache::with_budget(budget);
            for s in 0..shapes {
                let mut a =
                    crate::DistArray1::from_fn(proc.rank(), &g, &spec, [8 + 2 * s], [1], |[i]| {
                        i as f64
                    });
                a.exchange_ghosts_cached(proc, &mut cache, true);
            }
            assert_eq!(cache.len(), budget);
            assert_eq!(cache.budget(), Some(budget));
            proc.stats().schedule_evictions
        });
        for evictions in &run.results {
            assert_eq!(*evictions, (shapes - budget) as u64);
        }
        assert_eq!(
            run.report.total_schedule_evictions,
            2 * (shapes - budget) as u64
        );
    }

    #[test]
    fn cached_halo_rolls_back_after_a_redistribution() {
        // A redistribution bumps the generation under an unchanged static
        // shape: the gated vote must miss, roll back exactly once,
        // rebuild, and then replay warm again — with the
        // post-redistribution skirt equal to an uncached exchange.
        let run = Machine::run(cfg(4), |proc| {
            let g = ProcGrid::new_1d(4);
            let spec = DistSpec::block_local();
            let mut cache = HaloCache::new();
            let mut a =
                crate::DistArray2::from_fn(proc.rank(), &g, &spec, [8, 8], [1, 0], |[i, j]| {
                    (10 * i + j) as f64
                });
            for _ in 0..2 {
                a.exchange_ghosts_cached(proc, &mut cache, true);
            }
            // Structurally identical layout, but the generation bump must
            // invalidate the cached route all the same.
            let mut a = a.redistribute(proc, &spec, [1, 0]);
            for _ in 0..2 {
                a.exchange_ghosts_cached(proc, &mut cache, true);
            }
            let mut b = a.clone();
            b.exchange_ghosts(proc);
            assert_eq!(a.data, b.data);
            (
                proc.stats().inspector_runs,
                proc.stats().optimistic_hits,
                proc.stats().rollbacks,
            )
        });
        for (builds, hits, rollbacks) in &run.results {
            // Two cold builds (one per generation) plus b's uncached
            // exchange; the redistribution costs exactly one rollback
            // (same site, so the vote gate stays up and disagrees once).
            assert_eq!(*builds, 3);
            assert_eq!(*hits, 2);
            assert_eq!(*rollbacks, 1);
        }
    }
}
