//! Distributed sparse matrices — the irregular-gather workload the
//! inspector–executor engine was built for, routed *entirely* through
//! `kali-sched` like the ghost halo.
//!
//! A [`SparseCsr`] stores the owned rows of a block-row-distributed CSR
//! matrix. An SpMV `y = A·x` against a conformally block-distributed `x`
//! needs, on each processor, the x-values of every *non-owned* column its
//! rows reference — an index set that cannot be derived analytically the
//! way the halo's ghost skirt can, because it depends on the runtime
//! sparsity pattern. So the classic inspector runs instead:
//!
//! * **Cold trip**: walk the local column index set, bucket the non-owned
//!   columns per owning peer into sorted, deduplicated request vectors,
//!   and run the executor's split-phase *request round*
//!   ([`ScheduleExecutor::request_rounds`]) so every peer learns which of
//!   its x-values to serve. The resulting [`CommSchedule`] also records
//!   the *boundary rows* — those reading at least one remote column — so
//!   a split-phase executor can compute every other row while the values
//!   are in flight. The walk and the request round are charged to the
//!   virtual clock as inspection time, and the schedule is stored in
//!   `kali-sched`'s [`ScheduleCache`] keyed on (shape, teams, dists, a
//!   sparsity fingerprint, and both distribution generations).
//! * **Warm trip**: replay the cached schedule optimistically, the replay
//!   consensus vote riding as a one-word header on the fused value
//!   messages — zero inspector runs, zero request rounds. A CG solve does
//!   one SpMV per iteration against a fixed pattern, so every iteration
//!   after the first is a warm replay.
//! * **Repartition**: a [`SparseCsr::distribute`] (or a redistribution of
//!   `x`) bumps a monotone generation, the next lookup misses, the vote
//!   disagrees, and the trip rolls back to one fresh inspection — stale
//!   routes never reach storage.
//!
//! Unlike the halo — whose value traffic is gated to the *active team* —
//! the gather votes over the **full grid team**: with a runtime sparsity
//! pattern, a rank owning no matrix rows may still own x-elements other
//! ranks need (and vice versa), so no communication-free participation
//! test exists. Every grid member therefore serves, votes, and keeps the
//! collective cache discipline; empty members move only bare one-word
//! headers.
//!
//! Gathered values land in a [`GatherHaul`] — a contiguous, binary-
//! searchable (column → value) bundle private to the trip — never in
//! `x`'s storage, so concurrent gathers against the same `x` cannot
//! trample each other and `x` needs no ghost allocation.

use std::rc::Rc;

use kali_grid::{Dist1, ProcGrid};
use kali_machine::{tag, Proc, Real, NS_ARRAY};
use kali_sched::{
    ArraySchedule, CommSchedule, PendingValues, PendingVote, ScheduleCache, ScheduleExecutor,
    ScheduleWorld, SiteKey, NO_VOTE,
};

use crate::arrays::DistArray1;
use crate::halo::fnv1a;

/// Tag of the fused gather value messages ("GAT").
const GATHER_VALUE_TAG: u64 = tag(NS_ARRAY, 0x0047_4154);

/// Tag of the cold inspection's request round ("GRQ").
const GATHER_REQUEST_TAG: u64 = tag(NS_ARRAY, 0x0047_5251);

/// The gather's instance of the shared schedule executor.
const EXEC: ScheduleExecutor = ScheduleExecutor::new(GATHER_VALUE_TAG);

/// Site-hash salt ("SPMV") keeping gather sites disjoint from halo sites.
const GATHER_SITE_SALT: u64 = 0x5350_4d56;

/// The owned rows of a sparse matrix in CSR form, rows block-distributed
/// over a 1-D processor grid (the matrix analogue of a block
/// [`DistArray1`]), generic over the element type like the dense arrays.
///
/// Only the owned rows are materialized: `row_ptr` has one entry per
/// owned row plus one, and `col_idx`/`vals` hold their nonzeros with
/// *global* column indices. The distribution carries a monotone
/// `generation` like [`crate::DistArrayN`], so cached gather schedules
/// keyed on it roll back — exactly once — after a [`SparseCsr::distribute`].
pub struct SparseCsr<T: Real> {
    nrows: usize,
    ncols: usize,
    grid: ProcGrid,
    rank: usize,
    /// My grid coordinate along the (single) distributed dimension;
    /// `None` when this rank is not a grid member.
    q: Option<usize>,
    row_dist: Dist1,
    /// Global index of my first owned row (0 when owning nothing).
    row_lo: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    vals: Vec<T>,
    generation: u64,
}

impl<T: Real> SparseCsr<T> {
    /// Build the owned block of an `nrows × ncols` matrix on a 1-D grid:
    /// `row` is called once per *owned* global row and returns its
    /// `(column, value)` entries in any order (they are sorted; duplicate
    /// columns are rejected). Every rank evaluates only its own rows, so
    /// construction is owner-computes like [`DistArrayN::from_fn`].
    ///
    /// [`DistArrayN::from_fn`]: crate::DistArrayN::from_fn
    pub fn from_rows(
        rank: usize,
        grid: &ProcGrid,
        nrows: usize,
        ncols: usize,
        mut row: impl FnMut(usize) -> Vec<(usize, T)>,
    ) -> Self {
        assert_eq!(grid.ndims(), 1, "sparse rows distribute over a 1-D grid");
        let row_dist = Dist1::block(nrows, grid.size());
        let q = grid.coords_of(rank).map(|c| c[0]);
        let (row_lo, nlocal) = match q {
            Some(qd) => (row_dist.lower(qd).unwrap_or(0), row_dist.local_len(qd)),
            None => (0, 0),
        };
        let mut row_ptr = Vec::with_capacity(nlocal + 1);
        let mut col_idx = Vec::new();
        let mut vals = Vec::new();
        row_ptr.push(0);
        for li in 0..nlocal {
            let mut entries = row(row_lo + li);
            entries.sort_by_key(|&(c, _)| c);
            for w in entries.windows(2) {
                assert_ne!(w[0].0, w[1].0, "duplicate column in sparse row");
            }
            for (c, v) in entries {
                assert!(c < ncols, "column {c} outside 0..{ncols}");
                col_idx.push(c);
                vals.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        SparseCsr {
            nrows,
            ncols,
            grid: grid.clone(),
            rank,
            q,
            row_dist,
            row_lo,
            row_ptr,
            col_idx,
            vals,
            generation: 0,
        }
    }

    /// Global row count.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Global column count (the length `x` must have).
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of rows this processor owns.
    pub fn local_rows(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Nonzeros stored on this processor.
    pub fn local_nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Global index of local row `li`.
    pub fn global_row(&self, li: usize) -> usize {
        self.row_lo + li
    }

    /// The block distribution of the rows.
    pub fn row_dist(&self) -> Dist1 {
        self.row_dist
    }

    /// The owning grid.
    pub fn grid(&self) -> &ProcGrid {
        &self.grid
    }

    /// The machine rank this local block belongs to.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Is this rank a member of the owning grid?
    pub fn in_grid(&self) -> bool {
        self.q.is_some()
    }

    /// Monotone distribution generation (see [`SparseCsr::distribute`]).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Re-elaborate the distribution at run time — the paper's one-line
    /// tuning change. Block rows over the full grid is the one layout
    /// today, so no data moves; the generation bump alone invalidates
    /// every cached gather schedule keyed on it, and the next SpMV pays
    /// exactly one rollback and one fresh inspection before going warm
    /// again (pinned by tests). The re-blessing walk is charged like a
    /// dense redistribution's bookkeeping.
    pub fn distribute(&mut self, proc: &mut Proc) {
        self.row_dist = Dist1::block(self.nrows, self.grid.size());
        self.generation += 1;
        proc.memop(self.local_rows() as f64);
    }

    /// Mutable view of the stored nonzero values (pattern is fixed).
    /// Changing values never invalidates a gather schedule — only the
    /// *pattern* and the distributions are keyed.
    pub fn vals_mut(&mut self) -> &mut [T] {
        &mut self.vals
    }
}

impl SiteKey for GatherKey {
    fn site(&self) -> usize {
        self.site
    }
    fn team_ranks(&self) -> &[usize] {
        &self.team_ranks
    }
}

/// Cache key of an inspected gather schedule. The *site* hashes only the
/// SPMD-uniform shape `(nrows, ncols)` — never the local sparsity, which
/// differs per rank — so the per-site vote gate opens and closes
/// identically on every member. The full key adds the index maps, a
/// fingerprint of the local sparsity pattern, and both distribution
/// generations, so a repartition (of the matrix *or* of `x`) or a
/// different pattern at the same shape makes the lookup miss and the
/// piggybacked vote roll back instead of replaying a stale route.
#[derive(Clone, PartialEq)]
pub struct GatherKey {
    site: usize,
    team_ranks: Vec<usize>,
    shape: [usize; 2],
    row_dist: Dist1,
    x_dist: Dist1,
    /// FNV-1a over the local `row_ptr`/`col_idx` stream.
    fingerprint: u64,
    mat_generation: u64,
    x_generation: u64,
}

/// Cached gather schedules, shared by every sparse matrix a context
/// drives. One instance lives in `kali-runtime`'s `Ctx` beside the halo
/// cache; distinct patterns at the same shape share a site (the
/// colliding-site regime the optimistic protocol tolerates by voting).
pub struct GatherCache {
    pub(crate) cache: ScheduleCache<GatherKey>,
}

impl GatherCache {
    /// Default per-site budget, matching the halo cache.
    pub fn new() -> Self {
        GatherCache {
            cache: ScheduleCache::new(4),
        }
    }

    /// A cache additionally bounded to `max_entries` schedules in total.
    pub fn with_budget(max_entries: usize) -> Self {
        GatherCache {
            cache: ScheduleCache::with_budget(4, max_entries),
        }
    }

    /// Re-cap the global entry budget, evicting LRU entries down to it.
    pub fn set_budget(&mut self, max_entries: usize) {
        self.cache.set_budget(max_entries);
    }

    /// Cached schedules currently held.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// The global entry budget, if one is set.
    pub fn budget(&self) -> Option<usize> {
        self.cache.budget()
    }
}

impl Default for GatherCache {
    fn default() -> Self {
        GatherCache::new()
    }
}

/// The remote x-values one gather trip brought in: parallel sorted
/// columns and values, resolved by binary search. Private to the trip —
/// the executor scatters into this bundle, never into `x`'s storage.
pub struct GatherHaul<T> {
    cols: Vec<u64>,
    vals: Vec<T>,
}

impl<T: Real> GatherHaul<T> {
    fn empty() -> Self {
        GatherHaul {
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Pre-size the haul from a schedule's request vectors. Block
    /// x-distribution makes the per-peer request ranges disjoint and
    /// ascending in team order, so their concatenation is sorted.
    fn for_schedule(sched: &CommSchedule) -> Self {
        let cols: Vec<u64> = sched.arrays[0]
            .my_reqs
            .iter()
            .flat_map(|v| v.iter().copied())
            .collect();
        debug_assert!(cols.windows(2).all(|w| w[0] < w[1]));
        let vals = vec![T::zero(); cols.len()];
        GatherHaul { cols, vals }
    }

    /// The gathered value of global column `c`, if `c` was fetched.
    pub fn get(&self, c: usize) -> Option<T> {
        self.cols
            .binary_search(&(c as u64))
            .ok()
            .map(|p| self.vals[p])
    }

    /// Number of gathered values.
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// Did this trip fetch nothing?
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }
}

/// The executor's view of one gather trip: serves owned x-values by
/// global column index, scatters received values into the trip's haul.
struct GatherWorld<'a, T: Real> {
    x: &'a DistArray1<T>,
    haul: &'a mut GatherHaul<T>,
}

impl<T: Real> ScheduleWorld<T> for GatherWorld<'_, T> {
    fn load(&self, _array: usize, flat: u64) -> T {
        let s = self
            .x
            .storage_index([flat as usize])
            .expect("gather schedule serves owned x-values only");
        self.x.data[s]
    }

    fn store(&mut self, _array: usize, flat: u64, value: T) {
        let p = self
            .haul
            .cols
            .binary_search(&flat)
            .expect("gather schedule scatters the requested columns only");
        self.haul.vals[p] = value;
    }
}

/// A completed gather: the schedule that produced it (for the
/// interior/boundary row split) plus the haul of remote values.
pub struct Gathered<T> {
    sched: Rc<CommSchedule>,
    haul: GatherHaul<T>,
}

impl<T: Real> Gathered<T> {
    fn idle() -> Self {
        Gathered {
            sched: Rc::new(CommSchedule {
                arrays: Vec::new(),
                write_hint: 0,
                boundary: Vec::new(),
            }),
            haul: GatherHaul::empty(),
        }
    }

    /// Ascending local positions of the rows that read at least one
    /// remote column.
    pub fn boundary(&self) -> &[usize] {
        &self.sched.boundary
    }

    /// The gathered remote values.
    pub fn haul(&self) -> &GatherHaul<T> {
        &self.haul
    }
}

/// In-flight split-phase gather; complete with
/// [`SparseCsr::finish_gather_x`] / [`SparseCsr::finish_gather_x_cached`].
#[must_use = "a posted gather must be finished"]
pub struct PendingGather<T: Real> {
    inner: PendingInner<T>,
}

enum PendingInner<T: Real> {
    /// Not a grid member: nothing was posted.
    Idle,
    /// Pessimistic post against a fresh (or freshly stored) schedule.
    Plain {
        sched: Rc<CommSchedule>,
        pending: PendingValues<T>,
        haul: GatherHaul<T>,
    },
    /// Optimistic post; `hit` carries the locally cached schedule and its
    /// pre-sized haul when the lookup hit.
    Vote {
        pending: PendingVote<T>,
        hit: Option<(Rc<CommSchedule>, GatherHaul<T>)>,
    },
}

impl<T: Real> PendingGather<T> {
    /// The schedule this trip will replay, when one is locally known
    /// *and* locally valid — a fresh build, or a cache hit (the full key
    /// matched, so its boundary classification reflects the current
    /// pattern and distributions even if the team later votes to roll
    /// back). Interior rows read only owner-local x-values, so the
    /// caller may compute them against this schedule's boundary split
    /// while the exchange is in flight.
    pub fn local_schedule(&self) -> Option<Rc<CommSchedule>> {
        match &self.inner {
            PendingInner::Idle => None,
            PendingInner::Plain { sched, .. } => Some(Rc::clone(sched)),
            PendingInner::Vote { hit, .. } => hit.as_ref().map(|(s, _)| Rc::clone(s)),
        }
    }
}

/// Packed words a replay of `sched` delivers to this processor — what the
/// executor charges to `exchange_words`, re-attributed to `gather_words`
/// by the consumer so sparse gather volume stays separable from halo
/// volume.
fn gather_words_of<T: Real>(sched: &CommSchedule) -> u64 {
    sched.arrays[0]
        .my_reqs
        .iter()
        .map(|v| T::slice_words(v.len()) as u64)
        .sum()
}

impl<T: Real> SparseCsr<T> {
    fn check_conformal(&self, x: &DistArray1<T>) {
        assert_eq!(x.extents()[0], self.ncols, "x length must equal ncols");
        assert_eq!(
            x.grid().team().ranks(),
            self.grid.team().ranks(),
            "x must distribute over the matrix's grid"
        );
    }

    /// The cache key of this matrix's gather against `x`.
    fn gather_key(&self, x: &DistArray1<T>) -> GatherKey {
        let site = fnv1a([GATHER_SITE_SALT, self.nrows as u64, self.ncols as u64]) as usize;
        let fingerprint = fnv1a(
            self.row_ptr
                .iter()
                .map(|&v| v as u64)
                .chain(self.col_idx.iter().map(|&c| c as u64)),
        );
        GatherKey {
            site,
            team_ranks: self.grid.team().ranks().to_vec(),
            shape: [self.nrows, self.ncols],
            row_dist: self.row_dist,
            x_dist: x.dist(0),
            fingerprint,
            mat_generation: self.generation,
            x_generation: x.generation(),
        }
    }

    /// The inspector: walk the local column index set, bucket non-owned
    /// columns per owning peer (sorted, deduplicated), record the
    /// boundary rows, and run the request round so every peer learns
    /// which x-values to serve. The walk and the request round are
    /// charged to the virtual clock as inspection time, mirroring the
    /// interpreter's inspector pass.
    fn build_gather_schedule(&self, proc: &mut Proc, x: &DistArray1<T>) -> CommSchedule {
        let t0 = proc.clock();
        proc.note_inspector_run();
        let team = self.grid.team();
        let q = team.len();
        let xd = x.dist(0);
        // Team position of each grid coordinate (identical on 1-D grids,
        // but derived, not assumed).
        let pos: Vec<usize> = (0..q)
            .map(|c| {
                team.index_of(self.grid.rank_at(&[c]))
                    .expect("every grid member belongs to the grid team")
            })
            .collect();
        let myq = self.q.expect("inspection runs on grid members only");
        let mut my_reqs: Vec<Vec<u64>> = vec![Vec::new(); q];
        let mut boundary = Vec::new();
        for li in 0..self.local_rows() {
            let mut remote = false;
            for k in self.row_ptr[li]..self.row_ptr[li + 1] {
                let c = self.col_idx[k];
                let oq = xd.owner(c);
                if oq != myq {
                    my_reqs[pos[oq]].push(c as u64);
                    remote = true;
                }
            }
            if remote {
                boundary.push(li);
            }
        }
        for reqs in &mut my_reqs {
            reqs.sort_unstable();
            reqs.dedup();
        }
        proc.memop(self.local_nnz() as f64);
        let reqs = [my_reqs];
        let mut rounds = ScheduleExecutor::request_rounds(GATHER_REQUEST_TAG, proc, &team, &reqs);
        let incoming = rounds.remove(0);
        let [my_reqs] = reqs;
        let dt = proc.clock() - t0;
        proc.attribute_inspector_time(dt);
        CommSchedule {
            arrays: vec![ArraySchedule {
                name: "x".into(),
                my_reqs,
                incoming,
                origin: 0,
            }],
            write_hint: 0,
            boundary,
        }
    }

    /// The cold/rollback protocol shared by every cached blocking path:
    /// inspect (charged), exchange blocking, store for later replays.
    /// Build and store run on every grid member — the collective
    /// discipline that keeps the vote gate and ordinal stream
    /// SPMD-uniform.
    fn rebuild_and_gather(
        &self,
        proc: &mut Proc,
        cache: &mut GatherCache,
        x: &DistArray1<T>,
    ) -> Gathered<T> {
        let key = self.gather_key(x);
        let sched = self.build_gather_schedule(proc, x);
        let mut haul = GatherHaul::for_schedule(&sched);
        let team = self.grid.team();
        EXEC.exchange_blocking(proc, &team, &sched, &mut GatherWorld { x, haul: &mut haul });
        proc.note_gather_words(gather_words_of::<T>(&sched));
        let (_, sched) = cache.cache.store(key, sched);
        proc.note_schedule_evictions(cache.cache.take_evictions());
        Gathered { sched, haul }
    }

    /// Uncached blocking gather: inspect and exchange, every trip. The
    /// pessimistic baseline the cached paths are differentially tested
    /// against.
    pub fn gather_x(&self, proc: &mut Proc, x: &DistArray1<T>) -> Gathered<T> {
        if !self.in_grid() {
            return Gathered::idle();
        }
        self.check_conformal(x);
        let sched = self.build_gather_schedule(proc, x);
        let mut haul = GatherHaul::for_schedule(&sched);
        let team = self.grid.team();
        EXEC.exchange_blocking(proc, &team, &sched, &mut GatherWorld { x, haul: &mut haul });
        proc.note_gather_words(gather_words_of::<T>(&sched));
        Gathered {
            sched: Rc::new(sched),
            haul,
        }
    }

    /// Blocking gather through the [`GatherCache`]: a warm trip replays
    /// the cached schedule with the replay vote carried on the fused
    /// value round; a cold trip (or a vote rollback) inspects, exchanges,
    /// and stores.
    pub fn gather_x_cached(
        &self,
        proc: &mut Proc,
        cache: &mut GatherCache,
        x: &DistArray1<T>,
    ) -> Gathered<T> {
        if !self.in_grid() {
            return Gathered::idle();
        }
        self.check_conformal(x);
        let key = self.gather_key(x);
        if cache.cache.has_site_team(key.site(), key.team_ranks()) {
            let team = self.grid.team();
            let local = cache.cache.lookup(&key);
            let vote = local.as_ref().map_or(NO_VOTE, |(seq, _)| *seq as i64);
            let mut haul = match &local {
                Some((_, s)) => GatherHaul::for_schedule(s),
                None => GatherHaul::empty(),
            };
            let mut world = GatherWorld { x, haul: &mut haul };
            let hit = local.as_ref().map(|(_, s)| (s.as_ref(), &world));
            let outcome = EXEC.exchange_optimistic_blocking(proc, &team, vote, hit);
            match (outcome.agreed, local) {
                (Some(seq), Some((cached_seq, sched))) => {
                    debug_assert_eq!(cached_seq, seq);
                    proc.note_schedule_replay();
                    proc.note_optimistic_hit();
                    EXEC.scatter_agreed(proc, &sched, &mut world, &outcome);
                    proc.note_gather_words(gather_words_of::<T>(&sched));
                    return Gathered { sched, haul };
                }
                _ => proc.note_rollback(),
            }
        }
        self.rebuild_and_gather(proc, cache, x)
    }

    /// Uncached split-phase gather, post half: inspect, then post the
    /// fused value messages nonblocking so interior rows can run while
    /// remote x-values are in transit. Complete with
    /// [`SparseCsr::finish_gather_x`].
    pub fn begin_gather_x(&self, proc: &mut Proc, x: &DistArray1<T>) -> PendingGather<T> {
        if !self.in_grid() {
            return PendingGather {
                inner: PendingInner::Idle,
            };
        }
        self.check_conformal(x);
        let sched = self.build_gather_schedule(proc, x);
        let mut haul = GatherHaul::for_schedule(&sched);
        let team = self.grid.team();
        let pending = EXEC.post(proc, &team, &sched, &GatherWorld { x, haul: &mut haul });
        PendingGather {
            inner: PendingInner::Plain {
                sched: Rc::new(sched),
                pending,
                haul,
            },
        }
    }

    /// Completion half of [`SparseCsr::begin_gather_x`].
    pub fn finish_gather_x(
        &self,
        proc: &mut Proc,
        x: &DistArray1<T>,
        pending: PendingGather<T>,
    ) -> Gathered<T> {
        match pending.inner {
            PendingInner::Idle => Gathered::idle(),
            PendingInner::Plain {
                sched,
                pending,
                mut haul,
            } => {
                let team = self.grid.team();
                EXEC.complete(
                    proc,
                    &team,
                    &sched,
                    &mut GatherWorld { x, haul: &mut haul },
                    pending,
                );
                proc.note_gather_words(gather_words_of::<T>(&sched));
                Gathered { sched, haul }
            }
            PendingInner::Vote { .. } => {
                unreachable!("optimistic gathers complete through the cached path")
            }
        }
    }

    /// Split-phase gather through the [`GatherCache`], post half. A warm
    /// trip posts the cached schedule's fused value messages with the
    /// replay vote as a one-word header — no inspection, no request
    /// round; a cold trip inspects, stores, and posts pessimistically
    /// (the store is collective per site and team, so the vote gate stays
    /// SPMD-uniform). Complete with
    /// [`SparseCsr::finish_gather_x_cached`].
    pub fn begin_gather_x_cached(
        &self,
        proc: &mut Proc,
        cache: &mut GatherCache,
        x: &DistArray1<T>,
    ) -> PendingGather<T> {
        if !self.in_grid() {
            return PendingGather {
                inner: PendingInner::Idle,
            };
        }
        self.check_conformal(x);
        let key = self.gather_key(x);
        let team = self.grid.team();
        if cache.cache.has_site_team(key.site(), key.team_ranks()) {
            let local = cache.cache.lookup(&key);
            let vote = local.as_ref().map_or(NO_VOTE, |(seq, _)| *seq as i64);
            let mut haul = match &local {
                Some((_, s)) => GatherHaul::for_schedule(s),
                None => GatherHaul::empty(),
            };
            let pending = {
                let world = GatherWorld { x, haul: &mut haul };
                let hit = local.as_ref().map(|(_, s)| (s.as_ref(), &world));
                EXEC.post_optimistic(proc, &team, vote, hit)
            };
            return PendingGather {
                inner: PendingInner::Vote {
                    pending,
                    hit: local.map(|(_, s)| (s, haul)),
                },
            };
        }
        let sched = self.build_gather_schedule(proc, x);
        let mut haul = GatherHaul::for_schedule(&sched);
        let pending = EXEC.post(proc, &team, &sched, &GatherWorld { x, haul: &mut haul });
        let (_, sched) = cache.cache.store(key, sched);
        proc.note_schedule_evictions(cache.cache.take_evictions());
        PendingGather {
            inner: PendingInner::Plain {
                sched,
                pending,
                haul,
            },
        }
    }

    /// Completion half of [`SparseCsr::begin_gather_x_cached`]. On vote
    /// agreement the payloads scatter into the haul; on a rollback (e.g.
    /// a `distribute` bumped a generation under a still-gated site) the
    /// stale payloads are discarded and the whole gather re-runs from a
    /// fresh inspection — so the returned haul always reflects `x`'s
    /// current values under the current distributions.
    pub fn finish_gather_x_cached(
        &self,
        proc: &mut Proc,
        cache: &mut GatherCache,
        x: &DistArray1<T>,
        pending: PendingGather<T>,
    ) -> Gathered<T> {
        match pending.inner {
            PendingInner::Idle => Gathered::idle(),
            PendingInner::Plain {
                sched,
                pending,
                mut haul,
            } => {
                let team = self.grid.team();
                EXEC.complete(
                    proc,
                    &team,
                    &sched,
                    &mut GatherWorld { x, haul: &mut haul },
                    pending,
                );
                proc.note_gather_words(gather_words_of::<T>(&sched));
                Gathered { sched, haul }
            }
            PendingInner::Vote { pending, hit } => {
                let outcome = EXEC.complete_optimistic(proc, pending);
                match (outcome.agreed, hit) {
                    (Some(_), Some((sched, mut haul))) => {
                        proc.note_schedule_replay();
                        proc.note_optimistic_hit();
                        EXEC.scatter_agreed(
                            proc,
                            &sched,
                            &mut GatherWorld { x, haul: &mut haul },
                            &outcome,
                        );
                        proc.note_gather_words(gather_words_of::<T>(&sched));
                        Gathered { sched, haul }
                    }
                    _ => {
                        proc.note_rollback();
                        self.rebuild_and_gather(proc, cache, x)
                    }
                }
            }
        }
    }

    /// One x-value during row compute: owner-local reads come straight
    /// from `x`'s storage, remote columns from the trip's haul.
    #[inline]
    fn xval(&self, x: &DistArray1<T>, haul: Option<&GatherHaul<T>>, c: usize) -> T {
        if x.owned_range(0).contains(&c) {
            let s = x.storage_index([c]).expect("owned x-value");
            x.data[s]
        } else {
            haul.and_then(|h| h.get(c))
                .expect("remote column must have been gathered")
        }
    }

    /// Compute `y(i) = Σ_j A(i,j)·x(j)` for the owned rows at the given
    /// ascending local `positions`. Interior rows (not in a schedule's
    /// boundary list) read no remote column, so they may run with
    /// `haul = None` while a gather is still in flight. Returns the
    /// number of nonzeros visited (2 flops each; the caller charges the
    /// clock, mirroring the stencil plan's drive).
    pub fn apply_positions(
        &self,
        x: &DistArray1<T>,
        haul: Option<&GatherHaul<T>>,
        y: &mut DistArray1<T>,
        positions: &[usize],
    ) -> usize {
        debug_assert!(
            y.dist(0) == self.row_dist,
            "y must share the row distribution"
        );
        let mut nnz = 0usize;
        for &li in positions {
            let mut sum = T::zero();
            for k in self.row_ptr[li]..self.row_ptr[li + 1] {
                sum = sum + self.vals[k] * self.xval(x, haul, self.col_idx[k]);
            }
            nnz += self.row_ptr[li + 1] - self.row_ptr[li];
            y.put(self.row_lo + li, sum);
        }
        nnz
    }

    /// [`SparseCsr::apply_positions`] over every owned row.
    pub fn apply_all(
        &self,
        x: &DistArray1<T>,
        haul: Option<&GatherHaul<T>>,
        y: &mut DistArray1<T>,
    ) -> usize {
        let all: Vec<usize> = (0..self.local_rows()).collect();
        self.apply_positions(x, haul, y, &all)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kali_grid::{DistSpec, ProcGrid};
    use kali_machine::{CostModel, Machine, MachineConfig};
    use kali_sched::interior_positions;
    use std::time::Duration;

    fn cfg(p: usize) -> MachineConfig {
        MachineConfig::new(p)
            .with_cost(CostModel::unit())
            .with_watchdog(Duration::from_secs(10))
    }

    /// A banded test matrix: row i holds columns {i-2, i, i+2} (clipped),
    /// with deterministic values. The ±2 band crosses every block
    /// boundary on 4 procs, fetching an *even* number of columns (two)
    /// from each neighbour — so the f32 wire-halving assertion below is
    /// exact even under `slice_words`' odd-length rounding.
    fn band_row<T: Real>(n: usize) -> impl FnMut(usize) -> Vec<(usize, T)> {
        move |i| {
            [i.checked_sub(2), Some(i), (i + 2 < n).then_some(i + 2)]
                .into_iter()
                .flatten()
                .map(|c| (c, T::from_f64(((i * 7 + c * 3) % 11) as f64 + 1.0)))
                .collect()
        }
    }

    fn dense_spmv(n: usize, x: &[f64]) -> Vec<f64> {
        let mut row = band_row::<f64>(n);
        (0..n)
            .map(|i| row(i).into_iter().map(|(c, v)| v * x[c]).sum())
            .collect()
    }

    fn mk_x<T: Real>(proc_rank: usize, g: &ProcGrid, n: usize) -> DistArray1<T> {
        DistArray1::from_fn(proc_rank, g, &DistSpec::block1(), [n], [0], |[i]| {
            T::from_f64((i % 13) as f64 * 0.5 + 1.0)
        })
    }

    #[test]
    fn uncached_gather_spmv_matches_dense_reference() {
        let n = 19;
        let run = Machine::run(cfg(4), |proc| {
            let g = ProcGrid::new_1d(4);
            let a = SparseCsr::from_rows(proc.rank(), &g, n, n, band_row::<f64>(n));
            let x = mk_x::<f64>(proc.rank(), &g, n);
            let mut y =
                DistArray1::from_fn(proc.rank(), &g, &DistSpec::block1(), [n], [0], |_| 0.0);
            let got = a.gather_x(proc, &x);
            a.apply_all(&x, Some(got.haul()), &mut y);
            y.gather_to_root(proc)
        });
        let xs: Vec<f64> = (0..n).map(|i| (i % 13) as f64 * 0.5 + 1.0).collect();
        let want = dense_spmv(n, &xs);
        assert_eq!(run.results[0].as_ref().unwrap(), &want);
        assert_eq!(run.report.total_inspector_runs, 4);
        assert!(run.report.total_gather_words > 0);
        assert!(run.report.total_gather_words <= run.report.total_exchange_words);
    }

    #[test]
    fn cached_gather_replays_warm_trips() {
        let n = 19;
        let trips = 4u64;
        let run = Machine::run(cfg(4), |proc| {
            let g = ProcGrid::new_1d(4);
            let a = SparseCsr::from_rows(proc.rank(), &g, n, n, band_row::<f64>(n));
            let x = mk_x::<f64>(proc.rank(), &g, n);
            let mut cache = GatherCache::new();
            let mut hauls = Vec::new();
            for _ in 0..trips {
                let got = a.gather_x_cached(proc, &mut cache, &x);
                hauls.push(got.haul().len());
            }
            hauls
        });
        // All trips fetch the same columns; one inspection per proc.
        for h in &run.results {
            assert!(h.windows(2).all(|w| w[0] == w[1]));
        }
        assert_eq!(run.report.total_inspector_runs, 4);
        assert_eq!(run.report.total_optimistic_hits, 4 * (trips - 1));
        assert_eq!(run.report.total_rollbacks, 0);
    }

    #[test]
    fn distribute_mid_stream_costs_exactly_one_rollback() {
        let n = 19;
        let run = Machine::run(cfg(4), |proc| {
            let g = ProcGrid::new_1d(4);
            let mut a = SparseCsr::from_rows(proc.rank(), &g, n, n, band_row::<f64>(n));
            let x = mk_x::<f64>(proc.rank(), &g, n);
            let mut cache = GatherCache::new();
            let _ = a.gather_x_cached(proc, &mut cache, &x);
            let _ = a.gather_x_cached(proc, &mut cache, &x);
            a.distribute(proc);
            let _ = a.gather_x_cached(proc, &mut cache, &x);
            let _ = a.gather_x_cached(proc, &mut cache, &x);
        });
        assert_eq!(run.report.total_inspector_runs, 2 * 4);
        assert_eq!(run.report.total_rollbacks, 4);
        assert_eq!(run.report.total_optimistic_hits, 2 * 4);
    }

    #[test]
    fn split_phase_interior_then_boundary_matches_blocking() {
        let n = 23;
        let run = Machine::run(cfg(4), |proc| {
            let g = ProcGrid::new_1d(4);
            let a = SparseCsr::from_rows(proc.rank(), &g, n, n, band_row::<f64>(n));
            let x = mk_x::<f64>(proc.rank(), &g, n);
            let mk_y = |proc: &mut kali_machine::Proc| {
                DistArray1::from_fn(proc.rank(), &g, &DistSpec::block1(), [n], [0], |_| 0.0)
            };
            let mut cache = GatherCache::new();

            // Blocking baseline.
            let mut y_blk = mk_y(proc);
            let got = a.gather_x_cached(proc, &mut cache, &x);
            a.apply_all(&x, Some(got.haul()), &mut y_blk);

            // Warm split-phase trip: interior while in flight, boundary
            // after completion.
            let pending = a.begin_gather_x_cached(proc, &mut cache, &x);
            let sched = pending.local_schedule().expect("warm trip hits locally");
            let interior = interior_positions(&sched.boundary, a.local_rows());
            let mut y_spl = mk_y(proc);
            a.apply_positions(&x, None, &mut y_spl, &interior);
            let got = a.finish_gather_x_cached(proc, &mut cache, &x, pending);
            a.apply_positions(&x, Some(got.haul()), &mut y_spl, got.boundary());

            let blk = y_blk.gather_to_root(proc);
            let spl = y_spl.gather_to_root(proc);
            (blk, spl)
        });
        let (blk, spl) = &run.results[0];
        assert_eq!(blk.as_ref().unwrap(), spl.as_ref().unwrap());
        // One inspection (first trip); the split trip replayed.
        assert_eq!(run.report.total_inspector_runs, 4);
        assert_eq!(run.report.total_rollbacks, 0);
        assert_eq!(run.report.total_optimistic_hits, 4);
    }

    #[test]
    fn f32_gather_moves_half_the_words_of_f64() {
        fn words<T: Real>() -> (u64, u64) {
            let n = 20;
            let run = Machine::run(cfg(4), |proc| {
                let g = ProcGrid::new_1d(4);
                let a = SparseCsr::from_rows(proc.rank(), &g, n, n, band_row::<T>(n));
                let x = mk_x::<T>(proc.rank(), &g, n);
                let _ = a.gather_x(proc, &x);
            });
            (
                run.report.total_gather_words,
                run.report.total_exchange_words,
            )
        }
        let (g64, e64) = words::<f64>();
        let (g32, e32) = words::<f32>();
        assert!(g64 > 0);
        assert_eq!(e64, g64);
        assert_eq!(e32, g32);
        assert_eq!(g64, 2 * g32);
    }
}
