//! # kali-array — SPMD distributed arrays
//!
//! Distributed arrays are the only distributed data type of KF1 (§2 of the
//! paper). Each simulated processor holds a [`DistArrayN`] value describing
//! the *same* global array; the value stores only the locally owned block
//! (plus ghost layers) and the index maps needed to reason about everyone
//! else's part.
//!
//! The crate enforces the paper's *owner computes* discipline: reading an
//! element that is neither owned nor present in a ghost layer panics — all
//! remote data must be brought in through the explicit operations a KF1
//! compiler would generate:
//!
//! * the ghost exchange — the guarded edge exchange of Listing 2
//!   (Jacobi), generalized to any block-distributed dimension and routed
//!   entirely through the shared `kali-sched` executor on an
//!   *analytically derived* [`kali_sched::CommSchedule`]: blocking
//!   ([`DistArrayN::exchange_ghosts`]), split-phase
//!   ([`DistArrayN::begin_exchange_ghosts`] with a corner-policy flag /
//!   [`DistArrayN::finish_exchange_ghosts`]), and the [`HaloCache`]d
//!   forms that replay warm trips from `kali-sched`'s schedule cache
//!   with a piggybacked (optimistic) consensus vote — the layer
//!   `kali-runtime`'s `StencilPlan` drives;
//! * [`DistArrayN::extract_slice`]/[`DistArrayN::store_slice`] — copy-in /
//!   copy-out of array slices (`r(i, *)`) passed to distributed procedures;
//! * [`DistArrayN::gather_to_root`] — assembling a global array for
//!   verification or output;
//! * [`DistArrayN::redistribute`] — changing the `dist` clause at run time
//!   (the "tuning" the paper advertises as a one-line change);
//! * the irregular x-vector gather of the sparse matrix type
//!   ([`SparseCsr`]) — the halo's runtime-sparsity sibling: an
//!   *inspector-derived* schedule (the column index set cannot be walked
//!   analytically) cached in the same `kali-sched` cache, replayed warm
//!   with the same piggybacked vote, landing remote values in a
//!   trip-private [`GatherHaul`] instead of ghost storage — the layer
//!   `kali-runtime`'s `SparsePlan` drives.

mod arrays;
mod halo;
mod sparse;
mod xfer;

pub use arrays::{DistArray1, DistArray2, DistArray3, DistArrayN, Elem, Real};
pub use halo::{HaloCache, HaloKey, PendingHalo};
pub use sparse::{GatherCache, GatherHaul, GatherKey, Gathered, PendingGather, SparseCsr};
