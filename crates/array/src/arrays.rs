//! The distributed array type and its local index arithmetic.

use kali_grid::{DimDist, DimMap, Dist1, DistSpec, ProcGrid};

/// Element types a distributed array can hold — re-exported from
/// `kali-machine`, where the wire width of an element is defined next to
/// the cost model that charges it. The impls are nominal (`f64`, `f32`),
/// not blanket: packing and checksum behaviour are audited per type.
pub use kali_machine::{Elem, Real};

/// The read footprint a stencil plan declared for the current sweep:
/// reads may stray at most `width` cells outside the owned box, and into
/// diagonal (corner) ghosts only when `corners` is set. Debug builds
/// check every element read against it; release builds compile the
/// fence away entirely.
#[cfg(debug_assertions)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadFence {
    /// Maximum ghost depth a read may reach, per dimension.
    pub width: usize,
    /// Whether diagonal (multi-dimension) ghost reads are declared.
    pub corners: bool,
}

/// One processor's view of an N-dimensional distributed array.
///
/// Every processor of the owning grid constructs the same descriptor
/// (extents, distribution, grid) and stores only its own block. Processors
/// outside the grid may hold the value too; they own nothing and all
/// operations are no-ops for them.
#[derive(Debug, Clone)]
pub struct DistArrayN<T, const N: usize> {
    pub(crate) extents: [usize; N],
    pub(crate) dists: [Dist1; N],
    pub(crate) spec: DistSpec,
    pub(crate) grid: ProcGrid,
    pub(crate) rank: usize,
    /// Grid coordinates of this processor, if it belongs to the grid.
    pub(crate) coords: Option<Vec<usize>>,
    /// Per-dimension processor coordinate (0 for undistributed dims).
    pub(crate) qs: [usize; N],
    /// First owned global index per dimension (contiguous patterns).
    pub(crate) lo: [usize; N],
    /// Owned extent per dimension.
    pub(crate) len: [usize; N],
    /// Ghost width per dimension (only block/undistributed dims may be > 0).
    pub(crate) ghost: [usize; N],
    /// Row-major strides of the local storage box.
    pub(crate) stride: [usize; N],
    pub(crate) data: Vec<T>,
    /// Distribution generation: bumped every time the array's layout
    /// changes (redistribution). Cached communication schedules carry the
    /// generation they were derived under and must be discarded on mismatch.
    pub(crate) generation: u64,
    /// Debug-build read fence (see [`ReadFence`]): while armed, every
    /// element read is checked against the declared stencil footprint.
    #[cfg(debug_assertions)]
    pub(crate) fence: std::cell::Cell<Option<ReadFence>>,
}

/// 1-D distributed array.
pub type DistArray1<T> = DistArrayN<T, 1>;
/// 2-D distributed array.
pub type DistArray2<T> = DistArrayN<T, 2>;
/// 3-D distributed array.
pub type DistArray3<T> = DistArrayN<T, 3>;

impl<T: Elem, const N: usize> DistArrayN<T, N> {
    /// Declare a distributed array of the given global `extents` with ghost
    /// layers of width `ghost[d]` along each dimension, initialized to
    /// `T::default()`.
    ///
    /// `rank` is the machine rank of the calling processor (every member of
    /// the SPMD program calls this with its own rank — the KF1 analogue is
    /// elaborating the same declaration on every processor).
    ///
    /// Ghosts are only meaningful on `block`-distributed dimensions; asking
    /// for ghosts on a cyclic dimension panics.
    pub fn new(
        rank: usize,
        grid: &ProcGrid,
        spec: &DistSpec,
        extents: [usize; N],
        ghost: [usize; N],
    ) -> Self {
        assert_eq!(spec.ndims(), N, "distribution rank must match array rank");
        let dists_v = spec.dist1s(&extents, grid);
        let dists: [Dist1; N] = dists_v.try_into().expect("rank checked above");
        for d in 0..N {
            if ghost[d] > 0 {
                let ok = matches!(spec.map(d), DimMap::Local)
                    || matches!(spec.map(d), DimMap::Dist(DimDist::Block));
                assert!(
                    ok,
                    "ghost layers require a block or undistributed dimension"
                );
            }
        }
        let coords = grid.coords_of(rank);
        let mut qs = [0usize; N];
        let mut lo = [0usize; N];
        let mut len = [0usize; N];
        if let Some(c) = &coords {
            for d in 0..N {
                let q = match spec.grid_dim_of(d) {
                    Some(gd) => c[gd],
                    None => 0,
                };
                qs[d] = q;
                len[d] = dists[d].local_len(q);
                lo[d] = dists[d].lower(q).unwrap_or(0);
            }
        }
        let member = coords.is_some();
        let mut stride = [0usize; N];
        let mut total = if member && len.iter().all(|&l| l > 0) {
            1
        } else {
            0
        };
        if total > 0 {
            let mut s = 1;
            for d in (0..N).rev() {
                stride[d] = s;
                s *= len[d] + 2 * ghost[d];
            }
            total = s;
        }
        DistArrayN {
            extents,
            dists,
            spec: spec.clone(),
            grid: grid.clone(),
            rank,
            coords,
            qs,
            lo,
            len,
            ghost,
            stride,
            data: vec![T::default(); total],
            generation: 0,
            #[cfg(debug_assertions)]
            fence: std::cell::Cell::new(None),
        }
    }

    /// Arm the debug-build read fence: until [`DistArrayN::clear_read_fence`],
    /// every element read of this array must stay within the owned box
    /// plus a ghost skirt of depth `width`, touching diagonal (corner)
    /// ghosts only if `corners` is set. The compiled stencil path arms
    /// the fence with the footprint the plan *declared*, so a body that
    /// reads beyond its declaration panics in debug builds instead of
    /// silently consuming stale ghost values. No-op in release builds.
    #[inline]
    pub fn set_read_fence(&self, width: usize, corners: bool) {
        #[cfg(debug_assertions)]
        self.fence.set(Some(ReadFence { width, corners }));
        #[cfg(not(debug_assertions))]
        let _ = (width, corners);
    }

    /// Disarm the debug-build read fence. No-op in release builds.
    #[inline]
    pub fn clear_read_fence(&self) {
        #[cfg(debug_assertions)]
        self.fence.set(None);
    }

    /// Debug-build fence check for a single global index (see
    /// [`DistArrayN::set_read_fence`]). Only non-owned dimensions count
    /// against the footprint; a read more than `width` outside the owned
    /// interval, or outside it in two or more dimensions without a
    /// `corners` declaration, is a plan violation.
    #[cfg(debug_assertions)]
    pub(crate) fn check_fence(&self, idx: [usize; N]) {
        let Some(f) = self.fence.get() else { return };
        if !self.is_participant() {
            return;
        }
        let mut outside = 0usize;
        for d in 0..N {
            if !self.dists[d].is_contiguous() {
                continue;
            }
            let g = idx[d];
            let lo = self.lo[d];
            let hi = lo + self.len[d];
            if g >= lo && g < hi {
                continue;
            }
            outside += 1;
            let depth = if g < lo { lo - g } else { g + 1 - hi };
            assert!(
                depth <= f.width,
                "proc {}: read fence violation at {:?} — depth-{} ghost read \
                 exceeds the declared stencil footprint (width {})",
                self.rank,
                idx,
                depth,
                f.width
            );
        }
        assert!(
            outside <= 1 || f.corners,
            "proc {}: read fence violation at {:?} — corner ghost read but \
             the stencil plan declared corners: false",
            self.rank,
            idx
        );
    }

    /// Distribution generation of this descriptor. Monotonically bumped by
    /// layout-changing operations ([`DistArrayN::redistribute`]); equal
    /// generations (on the same array lineage) guarantee an unchanged
    /// ownership map, so communication schedules derived under one
    /// generation may be replayed under the same generation only.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Construct and fill owned elements from a function of global indices.
    pub fn from_fn(
        rank: usize,
        grid: &ProcGrid,
        spec: &DistSpec,
        extents: [usize; N],
        ghost: [usize; N],
        f: impl Fn([usize; N]) -> T,
    ) -> Self {
        let mut a = Self::new(rank, grid, spec, extents, ghost);
        a.fill_with(f);
        a
    }

    /// Overwrite every owned element from a function of global indices.
    pub fn fill_with(&mut self, f: impl Fn([usize; N]) -> T) {
        if !self.is_participant() {
            return;
        }
        let mut idx = [0usize; N];
        self.for_each_owned_rec(0, &mut idx, &mut |a, g| {
            let v = f(g);
            let di = a.storage_index_owned(g);
            a.data[di] = v;
        });
    }

    fn for_each_owned_rec(
        &mut self,
        d: usize,
        idx: &mut [usize; N],
        f: &mut impl FnMut(&mut Self, [usize; N]),
    ) {
        if d == N {
            let g = *idx;
            f(self, g);
            return;
        }
        for li in 0..self.len[d] {
            idx[d] = self.dists[d].local_to_global(self.qs[d], li);
            self.for_each_owned_rec(d + 1, idx, f);
        }
    }

    /// Does this processor belong to the grid *and* own a non-empty block?
    pub fn is_participant(&self) -> bool {
        self.coords.is_some() && self.len.iter().all(|&l| l > 0)
    }

    /// Is this processor a member of the owning grid?
    pub fn in_grid(&self) -> bool {
        self.coords.is_some()
    }

    /// Global extents.
    #[inline]
    pub fn extents(&self) -> [usize; N] {
        self.extents
    }

    /// The distribution clause.
    #[inline]
    pub fn spec(&self) -> &DistSpec {
        &self.spec
    }

    /// The owning processor grid.
    #[inline]
    pub fn grid(&self) -> &ProcGrid {
        &self.grid
    }

    /// Per-dimension index map.
    #[inline]
    pub fn dist(&self, d: usize) -> Dist1 {
        self.dists[d]
    }

    /// Ghost widths per dimension.
    #[inline]
    pub fn ghosts(&self) -> [usize; N] {
        self.ghost
    }

    /// A zeroed array with the same grid, distribution and ghosts.
    pub fn like(&self) -> Self {
        Self::new(self.rank, &self.grid, &self.spec, self.extents, self.ghost)
    }

    /// A zeroed array with the same grid, distribution and ghosts but new
    /// global extents (used for multigrid coarse levels).
    pub fn with_extents(&self, extents: [usize; N]) -> Self {
        Self::new(self.rank, &self.grid, &self.spec, extents, self.ghost)
    }

    /// Machine rank this view belongs to.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// First owned global index along `d` (contiguous dims; `lower` intrinsic).
    #[inline]
    pub fn lower(&self, d: usize) -> usize {
        self.lo[d]
    }

    /// One past the last owned global index along `d` (contiguous dims).
    #[inline]
    pub fn upper_excl(&self, d: usize) -> usize {
        self.lo[d] + self.len[d]
    }

    /// Number of owned indices along `d`.
    #[inline]
    pub fn local_len(&self, d: usize) -> usize {
        self.len[d]
    }

    /// Owned global range along a contiguous dimension `d`.
    pub fn owned_range(&self, d: usize) -> std::ops::Range<usize> {
        debug_assert!(
            self.dists[d].is_contiguous(),
            "owned_range on a non-contiguous dimension"
        );
        self.lo[d]..self.lo[d] + self.len[d]
    }

    /// Owned global indices along `d`, in local order (any pattern).
    pub fn owned_indices(&self, d: usize) -> Vec<usize> {
        if self.coords.is_none() {
            return vec![];
        }
        self.dists[d].owned(self.qs[d]).collect()
    }

    /// Does this processor own global element `idx`?
    pub fn owns(&self, idx: [usize; N]) -> bool {
        if !self.is_participant() {
            return false;
        }
        (0..N).all(|d| self.dists[d].owner(idx[d]) == self.qs[d])
    }

    /// Machine rank of the owner of global element `idx`.
    pub fn owner_rank(&self, idx: [usize; N]) -> usize {
        let mut gcoords = vec![0usize; self.grid.ndims()];
        for d in 0..N {
            if let Some(gd) = self.spec.grid_dim_of(d) {
                gcoords[gd] = self.dists[d].owner(idx[d]);
            }
        }
        self.grid.rank_at(&gcoords)
    }

    /// Storage index of an owned global element (no ghost reasoning).
    #[inline]
    fn storage_index_owned(&self, idx: [usize; N]) -> usize {
        let mut s = 0;
        for d in 0..N {
            let (q, li) = self.dists[d].global_to_local(idx[d]);
            debug_assert_eq!(q, self.qs[d]);
            s += (li + self.ghost[d]) * self.stride[d];
        }
        s
    }

    /// Row-major flat index of a global element over the full extents —
    /// the element naming used by communication schedules.
    pub(crate) fn global_flat(&self, idx: [usize; N]) -> usize {
        let mut f = 0usize;
        for d in 0..N {
            f = f * self.extents[d] + idx[d];
        }
        f
    }

    /// Inverse of [`DistArrayN::global_flat`].
    pub(crate) fn global_unflat(&self, mut f: usize) -> [usize; N] {
        let mut idx = [0usize; N];
        for d in (0..N).rev() {
            idx[d] = f % self.extents[d];
            f /= self.extents[d];
        }
        idx
    }

    /// Storage index of a global element visible to this processor (owned or
    /// within a ghost layer); `None` if remote.
    pub(crate) fn storage_index(&self, idx: [usize; N]) -> Option<usize> {
        if !self.is_participant() {
            return None;
        }
        let mut s = 0;
        for d in 0..N {
            let g = idx[d];
            debug_assert!(g < self.extents[d], "index out of global bounds");
            let dist = self.dists[d];
            if dist.is_contiguous() {
                // Owned box plus ghost skirt.
                let lo = self.lo[d];
                let hi = lo + self.len[d];
                let gh = self.ghost[d];
                if g + gh < lo || g >= hi + gh {
                    return None;
                }
                s += (g + gh - lo) * self.stride[d];
            } else {
                let (q, li) = dist.global_to_local(g);
                if q != self.qs[d] {
                    return None;
                }
                s += li * self.stride[d];
            }
        }
        Some(s)
    }

    /// Read a visible (owned or ghost) element; `None` if remote.
    pub fn try_get(&self, idx: [usize; N]) -> Option<T> {
        #[cfg(debug_assertions)]
        self.check_fence(idx);
        self.storage_index(idx).map(|s| self.data[s])
    }

    /// Read a visible element.
    ///
    /// Panics on a remote element: under owner-computes, remote values must
    /// first be brought in by `exchange_ghosts`, `extract_slice`, or
    /// `redistribute` — exactly the communication a KF1 compiler would have
    /// scheduled.
    #[inline]
    pub fn get(&self, idx: [usize; N]) -> T {
        self.try_get(idx).unwrap_or_else(|| {
            panic!(
                "proc {}: non-local read of element {:?} (dist {}, owner rank {}); \
                 a ghost exchange or slice transfer must make it visible first",
                self.rank,
                idx,
                self.spec,
                self.owner_rank(idx)
            )
        })
    }

    /// Write an owned element (ghosts are read-only).
    #[inline]
    pub fn set(&mut self, idx: [usize; N], v: T) {
        assert!(
            self.owns(idx),
            "proc {}: owner-computes violation — write to non-owned element {:?} \
             (owner rank {})",
            self.rank,
            idx,
            self.owner_rank(idx)
        );
        let s = self.storage_index_owned(idx);
        self.data[s] = v;
    }

    /// Apply `f` to every owned element (global index, current value) and
    /// store the result. No communication.
    pub fn map_owned(&mut self, f: impl Fn([usize; N], T) -> T) {
        if !self.is_participant() {
            return;
        }
        let mut idx = [0usize; N];
        self.for_each_owned_rec(0, &mut idx, &mut |a, g| {
            let s = a.storage_index_owned(g);
            a.data[s] = f(g, a.data[s]);
        });
    }

    /// Visit every owned element.
    pub fn for_each_owned(&self, mut f: impl FnMut([usize; N], T)) {
        if !self.is_participant() {
            return;
        }
        // Iterative over a clone of the index lists to keep `self` shared.
        let lists: Vec<Vec<usize>> = (0..N).map(|d| self.owned_indices(d)).collect();
        let mut counters = [0usize; N];
        'outer: loop {
            let mut idx = [0usize; N];
            for d in 0..N {
                idx[d] = lists[d][counters[d]];
            }
            f(idx, self.data[self.storage_index_owned(idx)]);
            // Odometer increment.
            let mut d = N;
            loop {
                if d == 0 {
                    break 'outer;
                }
                d -= 1;
                counters[d] += 1;
                if counters[d] < lists[d].len() {
                    break;
                }
                counters[d] = 0;
            }
        }
    }

    /// Sum of all owned elements mapped through `f` (no communication;
    /// combine with a reduction for a global result).
    pub fn local_fold<A>(&self, init: A, mut f: impl FnMut(A, [usize; N], T) -> A) -> A {
        let mut acc = Some(init);
        self.for_each_owned(|idx, v| {
            let a = acc.take().expect("fold accumulator");
            acc = Some(f(a, idx, v));
        });
        acc.expect("fold accumulator")
    }
}

impl<T: Elem> DistArray1<T> {
    /// 1-D convenience getter.
    #[inline]
    pub fn at(&self, i: usize) -> T {
        self.get([i])
    }

    /// 1-D convenience setter.
    #[inline]
    pub fn put(&mut self, i: usize, v: T) {
        self.set([i], v)
    }
}

impl<T: Elem> DistArray2<T> {
    /// 2-D convenience getter.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> T {
        self.get([i, j])
    }

    /// 2-D convenience setter.
    #[inline]
    pub fn put(&mut self, i: usize, j: usize, v: T) {
        self.set([i, j], v)
    }

    /// A whole contiguous run of row `i` (global indices), columns
    /// `js.start..js.end`, as a slice.
    ///
    /// This is the read side of the row-form stencil interface: because
    /// local storage is row-major with the last dimension innermost
    /// (`stride[1] == 1`), any visible run of a row — owned cells *and*
    /// their ghost-column neighbours — is one contiguous `&[T]`, so a
    /// stencil body can consume three such slices and compile to an
    /// autovectorizable tight loop instead of per-point `at` calls.
    ///
    /// Panics if any element of the run is not visible (owned or ghost)
    /// on this processor, exactly like [`DistArrayN::get`].
    #[inline]
    pub fn row(&self, i: usize, js: std::ops::Range<usize>) -> &[T] {
        if js.is_empty() {
            return &[];
        }
        #[cfg(debug_assertions)]
        {
            self.check_fence([i, js.start]);
            if js.end > js.start + 1 {
                self.check_fence([i, js.end - 1]);
            }
        }
        let s = self
            .storage_index([i, js.start])
            .unwrap_or_else(|| self.non_visible_row(i, js.clone()));
        let e = self
            .storage_index([i, js.end - 1])
            .unwrap_or_else(|| self.non_visible_row(i, js.clone()));
        debug_assert_eq!(e + 1 - s, js.len(), "row run must be contiguous");
        &self.data[s..=e]
    }

    /// The write side of the row-form interface: a mutable slice of the
    /// *owned* run of row `i`, columns `js`. Writes outside the owned box
    /// are an owner-computes violation, exactly like [`DistArrayN::set`].
    #[inline]
    pub fn row_mut(&mut self, i: usize, js: std::ops::Range<usize>) -> &mut [T] {
        if js.is_empty() {
            return &mut [];
        }
        assert!(
            self.owns([i, js.start]) && self.owns([i, js.end - 1]),
            "proc {}: owner-computes violation — row_mut({i}, {js:?}) reaches \
             outside the owned box",
            self.rank
        );
        let s = self.storage_index_owned([i, js.start]);
        let e = self.storage_index_owned([i, js.end - 1]);
        &mut self.data[s..=e]
    }

    #[cold]
    fn non_visible_row(&self, i: usize, js: std::ops::Range<usize>) -> usize {
        panic!(
            "proc {}: non-local row read ({i}, {js:?}) (dist {}); a ghost \
             exchange or slice transfer must make it visible first",
            self.rank, self.spec
        )
    }

    /// The column sibling of [`DistArray2::row`]: copy the visible run of
    /// column `j`, rows `is`, into the head of the contiguous scratch
    /// `out` (which must be at least `is.len()` long).
    ///
    /// A column is *strided* in row-major storage (`stride[0]` apart), so
    /// it cannot be handed out as a slice; gathering it once into
    /// contiguous scratch hoists the per-point index decode out of the
    /// consumer's arithmetic loop — the loop over the scratch then
    /// vectorizes like any row-form interior (the zebra x-line solver is
    /// the motivating consumer). Panics like [`DistArrayN::get`] if any
    /// element of the run is not visible.
    #[inline]
    pub fn col_into(&self, j: usize, is: std::ops::Range<usize>, out: &mut [T]) {
        if is.is_empty() {
            return;
        }
        #[cfg(debug_assertions)]
        {
            self.check_fence([is.start, j]);
            if is.end > is.start + 1 {
                self.check_fence([is.end - 1, j]);
            }
        }
        let s = self
            .storage_index([is.start, j])
            .unwrap_or_else(|| self.non_visible_col(j, is.clone()));
        let e = self
            .storage_index([is.end - 1, j])
            .unwrap_or_else(|| self.non_visible_col(j, is.clone()));
        let step = self.stride[0];
        debug_assert_eq!(s + (is.len() - 1) * step, e, "column run must be strided");
        for (k, o) in out.iter_mut().take(is.len()).enumerate() {
            *o = self.data[s + k * step];
        }
    }

    /// The write side of the column interface: scatter `vals` into the
    /// *owned* run of column `j`, rows `is`. Writes outside the owned box
    /// are an owner-computes violation, exactly like [`DistArrayN::set`].
    #[inline]
    pub fn col_set(&mut self, j: usize, is: std::ops::Range<usize>, vals: &[T]) {
        if is.is_empty() {
            return;
        }
        debug_assert!(vals.len() >= is.len());
        assert!(
            self.owns([is.start, j]) && self.owns([is.end - 1, j]),
            "proc {}: owner-computes violation — col_set({j}, {is:?}) reaches \
             outside the owned box",
            self.rank
        );
        let s = self.storage_index_owned([is.start, j]);
        let step = self.stride[0];
        for (k, &v) in vals.iter().take(is.len()).enumerate() {
            self.data[s + k * step] = v;
        }
    }

    #[cold]
    fn non_visible_col(&self, j: usize, is: std::ops::Range<usize>) -> usize {
        panic!(
            "proc {}: non-local column read ({is:?}, {j}) (dist {}); a ghost \
             exchange or slice transfer must make it visible first",
            self.rank, self.spec
        )
    }
}

impl<T: Elem> DistArray3<T> {
    /// 3-D convenience getter.
    #[inline]
    pub fn at(&self, i: usize, j: usize, k: usize) -> T {
        self.get([i, j, k])
    }

    /// 3-D convenience setter.
    #[inline]
    pub fn put(&mut self, i: usize, j: usize, k: usize, v: T) {
        self.set([i, j, k], v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid2() -> ProcGrid {
        ProcGrid::new_2d(2, 2)
    }

    #[test]
    fn ownership_boxes_partition_the_array() {
        let g = grid2();
        let spec = DistSpec::block2();
        let mut owned_count = 0usize;
        for rank in 0..4 {
            let a: DistArray2<f64> = DistArrayN::new(rank, &g, &spec, [8, 8], [0, 0]);
            assert!(a.is_participant());
            owned_count += a.local_len(0) * a.local_len(1);
            assert_eq!(a.local_len(0), 4);
        }
        assert_eq!(owned_count, 64);
    }

    #[test]
    fn get_set_roundtrip_on_owner() {
        let g = grid2();
        let spec = DistSpec::block2();
        let mut a: DistArray2<f64> = DistArrayN::new(0, &g, &spec, [8, 8], [1, 1]);
        a.put(2, 3, 7.5);
        assert_eq!(a.at(2, 3), 7.5);
        assert_eq!(a.try_get([2, 3]), Some(7.5));
    }

    #[test]
    #[should_panic(expected = "non-local read")]
    fn remote_read_panics() {
        let g = grid2();
        let spec = DistSpec::block2();
        let a: DistArray2<f64> = DistArrayN::new(0, &g, &spec, [8, 8], [0, 0]);
        let _ = a.at(7, 7); // owned by rank 3
    }

    #[test]
    #[should_panic(expected = "owner-computes violation")]
    fn remote_write_panics() {
        let g = grid2();
        let spec = DistSpec::block2();
        let mut a: DistArray2<f64> = DistArrayN::new(0, &g, &spec, [8, 8], [1, 1]);
        a.put(7, 7, 1.0);
    }

    #[test]
    fn ghost_cells_visible_but_not_writable() {
        let g = grid2();
        let spec = DistSpec::block2();
        let a: DistArray2<f64> = DistArrayN::new(0, &g, &spec, [8, 8], [1, 1]);
        // Rank 0 owns [0..4)x[0..4); global (4, 2) is in its ghost skirt.
        assert_eq!(a.try_get([4, 2]), Some(0.0));
        assert_eq!(a.try_get([5, 2]), None);
        assert!(!a.owns([4, 2]));
    }

    #[test]
    fn undistributed_dim_is_fully_local() {
        let g = ProcGrid::new_1d(4);
        let spec = DistSpec::local_block();
        let a: DistArray2<f64> =
            DistArrayN::from_fn(1, &g, &spec, [6, 16], [0, 0], |[i, j]| (i * 100 + j) as f64);
        assert_eq!(a.local_len(0), 6);
        assert_eq!(a.owned_range(1), 4..8);
        for i in 0..6 {
            for j in 4..8 {
                assert_eq!(a.at(i, j), (i * 100 + j) as f64);
            }
        }
    }

    #[test]
    fn owner_rank_matches_owns() {
        let g = grid2();
        let spec = DistSpec::block2();
        let arrays: Vec<DistArray2<f64>> = (0..4)
            .map(|r| DistArrayN::new(r, &g, &spec, [5, 7], [0, 0]))
            .collect();
        for i in 0..5 {
            for j in 0..7 {
                let owner = arrays[0].owner_rank([i, j]);
                for (r, a) in arrays.iter().enumerate() {
                    assert_eq!(a.owns([i, j]), r == owner, "({i},{j}) rank {r}");
                }
            }
        }
    }

    #[test]
    fn cyclic_dim_access() {
        let g = ProcGrid::new_1d(3);
        let spec = DistSpec::parse("(cyclic)").unwrap();
        let a: DistArray1<f64> = DistArrayN::from_fn(1, &g, &spec, [10], [0], |[i]| i as f64);
        assert_eq!(a.owned_indices(0), vec![1, 4, 7]);
        assert_eq!(a.at(4), 4.0);
        assert_eq!(a.try_get([5]), None);
    }

    #[test]
    fn nonmember_holds_empty_view() {
        let g = ProcGrid::with_ranks(vec![2], vec![0, 1]);
        let spec = DistSpec::block1();
        let a: DistArray1<f64> = DistArrayN::new(3, &g, &spec, [8], [0]);
        assert!(!a.in_grid());
        assert!(!a.is_participant());
        assert_eq!(a.try_get([0]), None);
        assert_eq!(a.owned_indices(0), Vec::<usize>::new());
    }

    #[test]
    fn empty_block_when_fewer_elements_than_procs() {
        let g = ProcGrid::new_1d(8);
        let spec = DistSpec::block1();
        // 4 elements over 8 procs: half the procs own nothing.
        let a: DistArray1<f64> = DistArrayN::new(1, &g, &spec, [4], [0]);
        let total: usize = (0..8)
            .map(|r| DistArrayN::<f64, 1>::new(r, &g, &spec, [4], [0]).local_len(0))
            .sum();
        assert_eq!(total, 4);
        assert!(a.in_grid());
    }

    #[test]
    fn fold_and_foreach_agree() {
        let g = grid2();
        let spec = DistSpec::block2();
        let a: DistArray2<f64> =
            DistArrayN::from_fn(2, &g, &spec, [6, 6], [0, 0], |[i, j]| (i + j) as f64);
        let mut sum1 = 0.0;
        a.for_each_owned(|_, v| sum1 += v);
        let sum2 = a.local_fold(0.0, |acc, _, v| acc + v);
        assert_eq!(sum1, sum2);
        assert!(sum1 > 0.0);
    }

    #[test]
    fn map_owned_transforms_in_place() {
        let g = ProcGrid::new_1d(2);
        let spec = DistSpec::block1();
        let mut a: DistArray1<f64> = DistArrayN::from_fn(0, &g, &spec, [8], [0], |[i]| i as f64);
        a.map_owned(|_, v| v * 2.0);
        assert_eq!(a.at(3), 6.0);
    }

    #[test]
    #[should_panic(expected = "ghost layers require")]
    fn ghosts_on_cyclic_rejected() {
        let g = ProcGrid::new_1d(2);
        let spec = DistSpec::parse("(cyclic)").unwrap();
        let _: DistArray1<f64> = DistArrayN::new(0, &g, &spec, [8], [1]);
    }

    #[test]
    fn three_d_mg3_layout() {
        // dist (*, block, block) over a 2x2 grid — the mg3 declaration.
        let g = grid2();
        let spec = DistSpec::local_block_block();
        let a: DistArray3<f64> = DistArrayN::new(3, &g, &spec, [4, 8, 8], [0, 1, 1]);
        assert_eq!(a.local_len(0), 4);
        assert_eq!(a.owned_range(1), 4..8);
        assert_eq!(a.owned_range(2), 4..8);
        assert!(a.owns([0, 5, 5]));
        assert!(!a.owns([0, 3, 5]));
    }
}
