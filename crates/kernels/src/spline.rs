//! Natural cubic spline fitting — the paper's introductory example of a
//! tensor product application domain ("spline fitting", §1) and a direct
//! consumer of the tridiagonal kernels.
//!
//! Fitting a natural cubic spline through `n+1` uniformly spaced knots
//! reduces to the tridiagonal system `(1, 4, 1) · M = rhs` for the interior
//! second derivatives; we solve it with Thomas sequentially and with
//! [`crate::tri_dist::tri_dist_const`] in parallel.

use kali_runtime::Ctx;

use crate::tri_dist::tri_dist_const;
use crate::tridiag::{thomas, TriDiag};

/// A fitted natural cubic spline on the uniform grid `x_i = i·h`.
#[derive(Debug, Clone)]
pub struct Spline {
    /// Knot values `y_0..=y_n`.
    pub y: Vec<f64>,
    /// Second derivatives `M_0..=M_n` (natural: `M_0 = M_n = 0`).
    pub m: Vec<f64>,
    /// Knot spacing.
    pub h: f64,
}

/// Right-hand side of the spline system: `6·(y_{i-1} − 2y_i + y_{i+1})/h²`
/// for interior knots `i = 1..n`.
pub fn spline_rhs(y: &[f64], h: f64) -> Vec<f64> {
    let n = y.len() - 1;
    (1..n)
        .map(|i| 6.0 * (y[i - 1] - 2.0 * y[i] + y[i + 1]) / (h * h))
        .collect()
}

/// Fit sequentially (Thomas).
pub fn spline_fit(y: &[f64], h: f64) -> Spline {
    let n = y.len() - 1;
    assert!(n >= 2, "need at least 3 knots");
    let rhs = spline_rhs(y, h);
    let sys = TriDiag::constant(n - 1, 1.0, 4.0, 1.0);
    let mi = thomas(&sys.b, &sys.a, &sys.c, &rhs);
    let mut m = vec![0.0; n + 1];
    m[1..n].copy_from_slice(&mi);
    Spline {
        y: y.to_vec(),
        m,
        h,
    }
}

/// Fit in parallel: the interior system is block-distributed over the
/// current 1-D processor array and solved by the substructured solver.
/// `rhs_local` is this processor's block of [`spline_rhs`]; returns this
/// processor's block of the interior second derivatives.
pub fn spline_fit_dist(ctx: &mut Ctx, n_interior: usize, rhs_local: &[f64]) -> Vec<f64> {
    tri_dist_const(ctx, n_interior, 1.0, 4.0, 1.0, rhs_local)
}

impl Spline {
    /// Number of intervals.
    pub fn n(&self) -> usize {
        self.y.len() - 1
    }

    /// Evaluate the spline at `t ∈ [0, n·h]`.
    pub fn eval(&self, t: f64) -> f64 {
        let n = self.n();
        let h = self.h;
        let i = ((t / h).floor() as usize).min(n - 1);
        let xl = i as f64 * h;
        let xr = xl + h;
        let (ml, mr) = (self.m[i], self.m[i + 1]);
        let (yl, yr) = (self.y[i], self.y[i + 1]);
        ml * (xr - t).powi(3) / (6.0 * h)
            + mr * (t - xl).powi(3) / (6.0 * h)
            + (yl / h - ml * h / 6.0) * (xr - t)
            + (yr / h - mr * h / 6.0) * (t - xl)
    }

    /// First derivative (used to test C¹ continuity).
    pub fn eval_d1(&self, t: f64) -> f64 {
        let n = self.n();
        let h = self.h;
        let i = ((t / h).floor() as usize).min(n - 1);
        let xl = i as f64 * h;
        let xr = xl + h;
        let (ml, mr) = (self.m[i], self.m[i + 1]);
        let (yl, yr) = (self.y[i], self.y[i + 1]);
        -ml * (xr - t).powi(2) / (2.0 * h) + mr * (t - xl).powi(2) / (2.0 * h)
            - (yl / h - ml * h / 6.0)
            + (yr / h - mr * h / 6.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kali_grid::{Dist1, ProcGrid};
    use kali_machine::{CostModel, Machine, MachineConfig};
    use std::time::Duration;

    fn knots(n: usize, f: impl Fn(f64) -> f64) -> (Vec<f64>, f64) {
        let h = 1.0 / n as f64;
        ((0..=n).map(|i| f(i as f64 * h)).collect(), h)
    }

    #[test]
    fn interpolates_the_knots() {
        let (y, h) = knots(16, |x| (2.0 * std::f64::consts::PI * x).sin());
        let s = spline_fit(&y, h);
        for i in 0..=16 {
            assert!((s.eval(i as f64 * h) - y[i]).abs() < 1e-10, "knot {i}");
        }
    }

    #[test]
    fn natural_end_conditions() {
        let (y, h) = knots(10, |x| x * x * (1.0 - x));
        let s = spline_fit(&y, h);
        assert_eq!(s.m[0], 0.0);
        assert_eq!(s.m[10], 0.0);
    }

    #[test]
    fn c1_continuity_at_knots() {
        let (y, h) = knots(12, |x| (3.0 * x).cos());
        let s = spline_fit(&y, h);
        for i in 1..12 {
            let t = i as f64 * h;
            let dl = s.eval_d1(t - 1e-9);
            let dr = s.eval_d1(t + 1e-9);
            assert!((dl - dr).abs() < 1e-5, "kink at knot {i}: {dl} vs {dr}");
        }
    }

    #[test]
    fn approximates_smooth_functions() {
        let n = 64;
        let (y, h) = knots(n, |x| (2.0 * std::f64::consts::PI * x).sin());
        let s = spline_fit(&y, h);
        let mut max_err: f64 = 0.0;
        for j in 0..1000 {
            let t = j as f64 / 1000.0;
            let err = (s.eval(t) - (2.0 * std::f64::consts::PI * t).sin()).abs();
            max_err = max_err.max(err);
        }
        // O(h^4) in the interior; end effects keep it around 1e-5 at n=64.
        assert!(max_err < 5e-4, "max interpolation error {max_err}");
    }

    #[test]
    fn distributed_fit_matches_sequential() {
        let n = 65; // 64 intervals, 63 interior unknowns? use 64 interior
        let nk = n - 1; // intervals
        let (y, h) = knots(nk, |x| (x * 2.5).sin() + x);
        let seq = spline_fit(&y, h);
        let rhs = spline_rhs(&y, h);
        let ni = nk - 1; // interior unknowns
        let run = Machine::run(
            MachineConfig::new(4)
                .with_cost(CostModel::unit())
                .with_watchdog(Duration::from_secs(10)),
            move |proc| {
                let grid = ProcGrid::new_1d(proc.nprocs());
                let dist = Dist1::block(ni, proc.nprocs());
                let me = proc.rank();
                let lo = dist.lower(me).unwrap();
                let hi = dist.upper(me).unwrap() + 1;
                let mut ctx = Ctx::new(proc, grid);
                spline_fit_dist(&mut ctx, ni, &rhs[lo..hi])
            },
        );
        let mut m = Vec::new();
        for piece in &run.results {
            m.extend_from_slice(piece);
        }
        for i in 0..ni {
            assert!((m[i] - seq.m[i + 1]).abs() < 1e-9, "interior {i}");
        }
    }
}
