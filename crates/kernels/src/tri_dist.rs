//! Listing 4: the substructured parallel tridiagonal solver, with the
//! shuffle/unshuffle level mapping of Listing 5 / Figure 5.
//!
//! The algorithm is the tree-structured divide and conquer of §3: every
//! processor reduces its block to a boundary pair (Figure 1), pairs are
//! mailed up a binary tree whose level `s` lives on team indices
//! `[2^(k−s)−1, 2^(k−s+1)−1)` (the unshuffle mapping — level sets are
//! *disjoint*, which is what lets the pipelined variant in [`crate::mtrix()`](crate::mtrix::mtrix)
//! keep every level busy at once), each active processor reduces four rows
//! to two (Figure 2), and after `k = log₂ p` steps a final four-row system
//! is solved by the sequential Thomas algorithm. Substitution then walks
//! the tree back down (Figure 4), doubling the active set at each step.

use kali_machine::{tag, Tag, NS_KERNEL};
use kali_runtime::Ctx;

use crate::substructure::{
    boundary_pair, interior_flops, interior_solve, reduce_block, reduce_flops,
};
use crate::tridiag::{thomas, thomas_flops};

const UP: u64 = 0;
const DOWN: u64 = 1;

/// Tag for solver traffic: direction, tree level, system id.
pub(crate) fn ktag(dir: u64, level: usize, sys: usize) -> Tag {
    tag(NS_KERNEL, (sys as u64) << 20 | (level as u64) << 4 | dir)
}

/// Team indices active at reduction level `s` (1-based level, `p = 2^k`):
/// the unshuffle mapping `[2^(k−s)−1, 2^(k−s+1)−1)` of Listing 5 / Figure 5.
pub fn level_set(p: usize, s: usize) -> std::ops::Range<usize> {
    let k = p.trailing_zeros() as usize;
    debug_assert!(s >= 1 && s <= k);
    (1 << (k - s)) - 1..(1 << (k - s + 1)) - 1
}

/// Team indices that *feed* level `s`: all processors for `s = 1`, the
/// level-(s−1) set otherwise.
pub fn source_set(p: usize, s: usize) -> std::ops::Range<usize> {
    if s == 1 {
        0..p
    } else {
        level_set(p, s - 1)
    }
}

/// A boundary pair on the wire: rows 0 and m−1 as `[b,a,c,f]` each.
pub(crate) type PairMsg = Vec<f64>; // length 8

pub(crate) fn pair_msg(pair: [[f64; 4]; 2]) -> PairMsg {
    let mut v = Vec::with_capacity(8);
    v.extend_from_slice(&pair[0]);
    v.extend_from_slice(&pair[1]);
    v
}

/// Assemble the four-row block `[A0, A1, B0, B1]` from two received pairs.
pub(crate) fn four_rows(lo: &[f64], hi: &[f64]) -> ([f64; 4], [f64; 4], [f64; 4], [f64; 4]) {
    debug_assert!(lo.len() == 8 && hi.len() == 8);
    let rows = [
        [lo[0], lo[1], lo[2], lo[3]],
        [lo[4], lo[5], lo[6], lo[7]],
        [hi[0], hi[1], hi[2], hi[3]],
        [hi[4], hi[5], hi[6], hi[7]],
    ];
    let b = [rows[0][0], rows[1][0], rows[2][0], rows[3][0]];
    let a = [rows[0][1], rows[1][1], rows[2][1], rows[3][1]];
    let c = [rows[0][2], rows[1][2], rows[2][2], rows[3][2]];
    let f = [rows[0][3], rows[1][3], rows[2][3], rows[3][3]];
    (b, a, c, f)
}

/// Solve one tridiagonal system distributed by blocks over the current
/// (1-D, power-of-two) processor array.
///
/// Inputs are this processor's block of the diagonals and right-hand side
/// (global rows `lower..=upper` of the block distribution of `n` rows);
/// the return value is the block of the solution, in the same layout.
/// Non-members of the grid return an empty vector.
///
/// Requires `n ≥ 2p` so every block has at least two rows (the paper's
/// implicit assumption).
pub fn tri_dist(ctx: &mut Ctx, n: usize, b: &[f64], a: &[f64], c: &[f64], f: &[f64]) -> Vec<f64> {
    let grid = ctx.grid().clone();
    let Some(me) = grid.index_of(ctx.rank()) else {
        return Vec::new();
    };
    let p = grid.size();
    if p == 1 {
        ctx.proc().compute(thomas_flops(n));
        return thomas(b, a, c, f);
    }
    assert!(p.is_power_of_two(), "tri_dist needs a power-of-two team");
    assert!(n >= 2 * p, "tri_dist needs at least 2 rows per processor");
    let m = b.len();
    assert!(m >= 2 && a.len() == m && c.len() == m && f.len() == m);
    let k = p.trailing_zeros() as usize;
    let team: Vec<usize> = grid.ranks().to_vec();

    // Phase 0: local substructuring (Figure 1).
    let mut lb = b.to_vec();
    let mut la = a.to_vec();
    let mut lc = c.to_vec();
    let mut lf = f.to_vec();
    ctx.proc().mark("tri:reduce:s=0");
    reduce_block(&mut lb, &mut la, &mut lc, &mut lf);
    ctx.proc().compute(reduce_flops(m));
    let mut pair = pair_msg(boundary_pair(&lb, &la, &lc, &lf));

    // Saved four-row blocks per level (levels 1..k-1 where this proc is a dest).
    let mut saved: Vec<Option<([f64; 4], [f64; 4], [f64; 4], [f64; 4])>> = vec![None; k + 1];
    let mut x4_root: Option<Vec<f64>> = None;

    // Reduction sweep up the tree.
    for s in 1..=k {
        let sources: Vec<usize> = source_set(p, s).collect();
        let dests: Vec<usize> = level_set(p, s).collect();
        if let Some(qidx) = sources.iter().position(|&x| x == me) {
            let dest = dests[qidx / 2];
            ctx.proc().send(team[dest], ktag(UP, s, 0), pair.clone());
        }
        if let Some(j) = dests.iter().position(|&x| x == me) {
            let lo: PairMsg = ctx.proc().recv(team[sources[2 * j]], ktag(UP, s, 0));
            let hi: PairMsg = ctx.proc().recv(team[sources[2 * j + 1]], ktag(UP, s, 0));
            let (mut rb, mut ra, mut rc, mut rf) = four_rows(&lo, &hi);
            ctx.proc().mark(format!("tri:reduce:s={s}"));
            if s < k {
                reduce_block(&mut rb, &mut ra, &mut rc, &mut rf);
                ctx.proc().compute(reduce_flops(4));
                saved[s] = Some((rb, ra, rc, rf));
                pair = pair_msg([[rb[0], ra[0], rc[0], rf[0]], [rb[3], ra[3], rc[3], rf[3]]]);
            } else {
                // Root: the four-row system is closed (outer couplings are
                // the original b[0] = c[n-1] = 0).
                let x = thomas(&rb, &ra, &rc, &rf);
                ctx.proc().compute(thomas_flops(4));
                x4_root = Some(x);
            }
        }
    }

    // Substitution sweep back down (Figure 4).
    let mut x4: Option<Vec<f64>> = x4_root;
    let mut x_local = Vec::new();
    for s in (1..=k).rev() {
        let sources: Vec<usize> = source_set(p, s).collect();
        let dests: Vec<usize> = level_set(p, s).collect();
        if let Some(j) = dests.iter().position(|&x| x == me) {
            let x4v = x4.take().expect("dest has its block solution");
            ctx.proc().mark(format!("tri:subst:s={s}"));
            ctx.proc()
                .send(team[sources[2 * j]], ktag(DOWN, s, 0), vec![x4v[0], x4v[1]]);
            ctx.proc().send(
                team[sources[2 * j + 1]],
                ktag(DOWN, s, 0),
                vec![x4v[2], x4v[3]],
            );
        }
        if let Some(qidx) = sources.iter().position(|&x| x == me) {
            let dest = dests[qidx / 2];
            let ends: Vec<f64> = ctx.proc().recv(team[dest], ktag(DOWN, s, 0));
            if s > 1 {
                let (sb, sa, sc, sf) = saved[s - 1].expect("source was a dest one level down");
                x4 = Some(interior_solve(&sb, &sa, &sc, &sf, ends[0], ends[1]));
                ctx.proc().compute(interior_flops(4));
            } else {
                ctx.proc().mark("tri:subst:s=0");
                x_local = interior_solve(&lb, &la, &lc, &lf, ends[0], ends[1]);
                ctx.proc().compute(interior_flops(m));
            }
        }
    }
    x_local
}

/// Constant-coefficient variant (`tric` of Listing 7): builds the diagonal
/// blocks locally (with the global end conditions) and solves.
pub fn tri_dist_const(
    ctx: &mut Ctx,
    n: usize,
    b0: f64,
    a0: f64,
    c0: f64,
    f_local: &[f64],
) -> Vec<f64> {
    let grid = ctx.grid().clone();
    let Some(me) = grid.index_of(ctx.rank()) else {
        return Vec::new();
    };
    let p = grid.size();
    let dist = kali_grid::Dist1::block(n, p);
    let m = dist.local_len(me);
    assert_eq!(f_local.len(), m, "rhs block size mismatch");
    let lo = dist.lower(me).unwrap_or(0);
    let mut b = vec![b0; m];
    let mut c = vec![c0; m];
    if lo == 0 && m > 0 {
        b[0] = 0.0;
    }
    if lo + m == n && m > 0 {
        c[m - 1] = 0.0;
    }
    let a = vec![a0; m];
    ctx.proc().memop(3.0 * m as f64);
    tri_dist(ctx, n, &b, &a, &c, f_local)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tridiag::TriDiag;
    use kali_grid::{Dist1, ProcGrid};
    use kali_machine::{CostModel, Machine, MachineConfig};
    use std::time::Duration;

    fn cfg(p: usize) -> MachineConfig {
        MachineConfig::new(p)
            .with_cost(CostModel::unit())
            .with_watchdog(Duration::from_secs(20))
    }

    #[test]
    fn level_sets_are_disjoint_and_cover_figure5() {
        // p = 8, k = 3: level 1 -> {3..6}, level 2 -> {1, 2}, level 3 -> {0}.
        assert_eq!(level_set(8, 1), 3..7);
        assert_eq!(level_set(8, 2), 1..3);
        assert_eq!(level_set(8, 3), 0..1);
        // Disjoint across levels (the property that enables pipelining).
        for p in [2usize, 4, 8, 16, 32] {
            let k = p.trailing_zeros() as usize;
            let mut seen = vec![false; p];
            for s in 1..=k {
                for i in level_set(p, s) {
                    assert!(!seen[i], "p={p}: index {i} in two level sets");
                    seen[i] = true;
                }
                assert_eq!(level_set(p, s).len(), p >> s, "halving active sets");
            }
        }
    }

    #[test]
    fn source_sets_feed_the_next_level() {
        assert_eq!(source_set(8, 1), 0..8);
        assert_eq!(source_set(8, 2), 3..7);
        assert_eq!(source_set(8, 3), 1..3);
    }

    fn run_tri(n: usize, p: usize, seed: u64) -> (Vec<f64>, kali_machine::RunReport) {
        let sys = TriDiag::random_dd(n, seed);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.17).sin() + 0.5).collect();
        let f = sys.apply(&x_true);
        let sys2 = sys.clone();
        let f2 = f.clone();
        let run = Machine::run(cfg(p), move |proc| {
            let grid = ProcGrid::new_1d(proc.nprocs());
            let me = proc.rank();
            let dist = Dist1::block(n, proc.nprocs());
            let lo = dist.lower(me).unwrap();
            let hi = dist.upper(me).unwrap() + 1;
            let mut ctx = Ctx::new(proc, grid);
            tri_dist(
                &mut ctx,
                n,
                &sys2.b[lo..hi],
                &sys2.a[lo..hi],
                &sys2.c[lo..hi],
                &f2[lo..hi],
            )
        });
        let mut x = Vec::new();
        for piece in &run.results {
            x.extend_from_slice(piece);
        }
        let err = x
            .iter()
            .zip(&x_true)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-8, "n={n} p={p}: max err {err}");
        (x, run.report)
    }

    #[test]
    fn matches_thomas_across_team_sizes() {
        for p in [1usize, 2, 4, 8] {
            run_tri(64, p, 3 + p as u64);
        }
    }

    #[test]
    fn uneven_blocks() {
        run_tri(37, 4, 5); // blocks of 9/9/10/9
        run_tri(19, 8, 6); // minimum-ish blocks
    }

    #[test]
    fn large_system() {
        run_tri(1 << 12, 8, 11);
    }

    #[test]
    fn active_processors_halve_each_step_figure3() {
        let n = 256;
        let p = 8;
        let (_, report) = run_tri(n, p, 21);
        // Count how many procs recorded a reduce mark at each level.
        for s in 1..=3usize {
            let label = format!("tri:reduce:s={s}");
            let active = report
                .procs
                .iter()
                .filter(|pr| pr.marks.iter().any(|m| m.label == label))
                .count();
            assert_eq!(active, p >> s, "level {s}");
        }
        // Everyone participates at level 0 and in the final substitution.
        let base = report
            .procs
            .iter()
            .filter(|pr| pr.marks.iter().any(|m| m.label == "tri:reduce:s=0"))
            .count();
        assert_eq!(base, p);
        let fin = report
            .procs
            .iter()
            .filter(|pr| pr.marks.iter().any(|m| m.label == "tri:subst:s=0"))
            .count();
        assert_eq!(fin, p);
    }

    #[test]
    fn virtual_time_deterministic() {
        let (_, r1) = run_tri(128, 4, 9);
        let (_, r2) = run_tri(128, 4, 9);
        assert_eq!(r1.elapsed, r2.elapsed);
        assert_eq!(r1.total_msgs, r2.total_msgs);
    }

    #[test]
    fn message_count_matches_tree() {
        // Reduction: p sends at level 1, p/2 at level 2, ..., 2 at level k
        //   = 2p - 2 pair messages.
        // Substitution: same count of half messages. Total 2*(2p-2).
        let p = 8;
        let (_, report) = run_tri(256, p, 13);
        assert_eq!(report.total_msgs as usize, 2 * (2 * p - 2));
    }

    #[test]
    fn const_coefficient_variant() {
        let n = 64;
        let p = 4;
        // (b0,a0,c0) = (-1, 4, -1), f = A * x_true
        let sys = TriDiag::constant(n, -1.0, 4.0, -1.0);
        let x_true: Vec<f64> = (0..n).map(|i| ((i % 7) as f64) - 3.0).collect();
        let f = sys.apply(&x_true);
        let run = Machine::run(cfg(p), move |proc| {
            let grid = ProcGrid::new_1d(proc.nprocs());
            let me = proc.rank();
            let dist = Dist1::block(n, proc.nprocs());
            let lo = dist.lower(me).unwrap();
            let hi = dist.upper(me).unwrap() + 1;
            let mut ctx = Ctx::new(proc, grid);
            tri_dist_const(&mut ctx, n, -1.0, 4.0, -1.0, &f[lo..hi])
        });
        let mut x = Vec::new();
        for piece in &run.results {
            x.extend_from_slice(piece);
        }
        for i in 0..n {
            assert!((x[i] - x_true[i]).abs() < 1e-9, "i={i}");
        }
    }

    #[test]
    fn speedup_appears_at_scale() {
        // With compute-dominated costs the distributed solver must beat the
        // sequential one for large n.
        let n = 1 << 14;
        let sys = TriDiag::random_dd(n, 31);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        let f = sys.apply(&x_true);

        let seq = {
            let (sys, f) = (sys.clone(), f.clone());
            Machine::run(cfg(1), move |proc| {
                proc.compute(thomas_flops(n));
                thomas(&sys.b, &sys.a, &sys.c, &f)
            })
        };
        let par = {
            let (sys, f) = (sys.clone(), f.clone());
            Machine::run(cfg(8), move |proc| {
                let grid = ProcGrid::new_1d(proc.nprocs());
                let dist = Dist1::block(n, proc.nprocs());
                let lo = dist.lower(proc.rank()).unwrap();
                let hi = dist.upper(proc.rank()).unwrap() + 1;
                let mut ctx = Ctx::new(proc, grid);
                tri_dist(
                    &mut ctx,
                    n,
                    &sys.b[lo..hi],
                    &sys.a[lo..hi],
                    &sys.c[lo..hi],
                    &f[lo..hi],
                )
            })
        };
        let speedup = seq.report.elapsed / par.report.elapsed;
        assert!(
            speedup > 2.0,
            "expected a real speedup at n={n}, p=8: got {speedup:.2}"
        );
    }
}
