//! Cyclic (odd-even) reduction — the classical alternative parallel
//! tridiagonal algorithm (reference \[8\] of the paper), implemented
//! sequentially as an algorithmic baseline for the experiments.

use crate::tridiag::thomas;

/// Solve a tridiagonal system by recursive odd-even reduction.
///
/// Each round eliminates the even-indexed unknowns, halving the system;
/// the total work is ~17n flops, about twice Thomas' 8n — the classical
/// trade of extra work for O(log n) parallel depth.
pub fn cyclic_reduction(b: &[f64], a: &[f64], c: &[f64], f: &[f64]) -> Vec<f64> {
    let n = a.len();
    if n <= 3 {
        return thomas(b, a, c, f);
    }
    // Reduced system over odd global positions 1, 3, 5, ...
    let nr = n / 2;
    let mut rb = vec![0.0; nr];
    let mut ra = vec![0.0; nr];
    let mut rc = vec![0.0; nr];
    let mut rf = vec![0.0; nr];
    for (r, i) in (1..n).step_by(2).enumerate() {
        let alpha = b[i] / a[i - 1];
        ra[r] = a[i] - alpha * c[i - 1];
        rb[r] = -alpha * b[i - 1];
        rf[r] = f[i] - alpha * f[i - 1];
        if i + 1 < n {
            let gamma = c[i] / a[i + 1];
            ra[r] -= gamma * b[i + 1];
            rc[r] = -gamma * c[i + 1];
            rf[r] -= gamma * f[i + 1];
        }
    }
    rb[0] = 0.0;
    rc[nr - 1] = 0.0;
    let xo = cyclic_reduction(&rb, &ra, &rc, &rf);
    // Back-substitute the even positions.
    let mut x = vec![0.0; n];
    for (r, i) in (1..n).step_by(2).enumerate() {
        x[i] = xo[r];
    }
    for i in (0..n).step_by(2) {
        let left = if i > 0 { b[i] * x[i - 1] } else { 0.0 };
        let right = if i + 1 < n { c[i] * x[i + 1] } else { 0.0 };
        x[i] = (f[i] - left - right) / a[i];
    }
    x
}

/// Approximate flop count of [`cyclic_reduction`] for cost accounting.
pub fn cr_flops(n: usize) -> f64 {
    17.0 * n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tridiag::TriDiag;

    #[test]
    fn matches_thomas_various_sizes() {
        for n in [1usize, 2, 3, 4, 5, 8, 17, 64, 255, 1000] {
            let m = TriDiag::random_dd(n, n as u64 + 1);
            let x_true: Vec<f64> = (0..n).map(|i| ((i * 3 % 7) as f64) - 2.0).collect();
            let f = m.apply(&x_true);
            let x = cyclic_reduction(&m.b, &m.a, &m.c, &f);
            let xt = thomas(&m.b, &m.a, &m.c, &f);
            for i in 0..n {
                assert!((x[i] - xt[i]).abs() < 1e-8, "n={n} i={i}");
                assert!((x[i] - x_true[i]).abs() < 1e-7, "n={n} i={i} vs truth");
            }
        }
    }

    #[test]
    fn poisson_system() {
        let n = 127;
        let m = TriDiag::constant(n, -1.0, 2.0, -1.0);
        let h = 1.0 / (n as f64 + 1.0);
        let f = vec![h * h; n];
        let x = cyclic_reduction(&m.b, &m.a, &m.c, &f);
        for i in 0..n {
            let xi = (i as f64 + 1.0) * h;
            assert!((x[i] - xi * (1.0 - xi) / 2.0).abs() < 1e-10);
        }
    }
}
