//! Tridiagonal systems and the sequential Thomas algorithm.

/// A tridiagonal matrix stored as three diagonals:
/// row `i` is `(b[i], a[i], c[i])` with `b[0] == 0` and `c[n-1] == 0`
/// (the layout of Figure 1 in the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct TriDiag {
    /// Sub-diagonal (`b[0]` unused, kept 0).
    pub b: Vec<f64>,
    /// Main diagonal.
    pub a: Vec<f64>,
    /// Super-diagonal (`c[n-1]` unused, kept 0).
    pub c: Vec<f64>,
}

impl TriDiag {
    /// System size.
    pub fn n(&self) -> usize {
        self.a.len()
    }

    /// Construct from diagonals, checking shape.
    pub fn new(b: Vec<f64>, a: Vec<f64>, c: Vec<f64>) -> Self {
        let n = a.len();
        assert!(n >= 1);
        assert_eq!(b.len(), n);
        assert_eq!(c.len(), n);
        assert_eq!(b[0], 0.0, "b[0] must be zero");
        assert_eq!(c[n - 1], 0.0, "c[n-1] must be zero");
        TriDiag { b, a, c }
    }

    /// Constant-coefficient system `(b0, a0, c0)` of size `n` — the form
    /// used by the ADI routines (`tric` in Listing 7).
    pub fn constant(n: usize, b0: f64, a0: f64, c0: f64) -> Self {
        let mut b = vec![b0; n];
        let mut c = vec![c0; n];
        b[0] = 0.0;
        c[n - 1] = 0.0;
        TriDiag {
            b,
            a: vec![a0; n],
            c,
        }
    }

    /// A random strictly diagonally dominant system (factorable without
    /// pivoting, as the paper assumes), reproducible from `seed`.
    pub fn random_dd(n: usize, seed: u64) -> Self {
        // Small deterministic LCG to avoid a dependency in library code.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 // in [0, 1)
        };
        let mut b = vec![0.0; n];
        let mut a = vec![0.0; n];
        let mut c = vec![0.0; n];
        for i in 0..n {
            if i > 0 {
                b[i] = -(0.25 + 0.5 * next());
            }
            if i + 1 < n {
                c[i] = -(0.25 + 0.5 * next());
            }
            a[i] = b[i].abs() + c[i].abs() + 1.0 + next();
        }
        TriDiag { b, a, c }
    }

    /// Matrix-vector product `A x`.
    pub fn apply(&self, x: &[f64]) -> Vec<f64> {
        let n = self.n();
        assert_eq!(x.len(), n);
        (0..n)
            .map(|i| {
                let mut v = self.a[i] * x[i];
                if i > 0 {
                    v += self.b[i] * x[i - 1];
                }
                if i + 1 < n {
                    v += self.c[i] * x[i + 1];
                }
                v
            })
            .collect()
    }

    /// Max-norm of the residual `A x − f`.
    pub fn residual_inf(&self, x: &[f64], f: &[f64]) -> f64 {
        self.apply(x)
            .iter()
            .zip(f)
            .map(|(ax, fi)| (ax - fi).abs())
            .fold(0.0, f64::max)
    }
}

/// Sequential Thomas algorithm: solve `A x = f` for a tridiagonal `A`
/// given as diagonal slices. No pivoting (the paper's assumption).
pub fn thomas(b: &[f64], a: &[f64], c: &[f64], f: &[f64]) -> Vec<f64> {
    let n = a.len();
    assert!(n >= 1);
    assert!(b.len() == n && c.len() == n && f.len() == n);
    let mut ap = a.to_vec();
    let mut fp = f.to_vec();
    for i in 1..n {
        let w = b[i] / ap[i - 1];
        ap[i] -= w * c[i - 1];
        fp[i] -= w * fp[i - 1];
    }
    let mut x = vec![0.0; n];
    x[n - 1] = fp[n - 1] / ap[n - 1];
    for i in (0..n - 1).rev() {
        x[i] = (fp[i] - c[i] * x[i + 1]) / ap[i];
    }
    x
}

/// Flop count of [`thomas`] for cost accounting (≈ 8 per row).
pub fn thomas_flops(n: usize) -> f64 {
    8.0 * n as f64
}

/// Solve a [`TriDiag`] system.
pub fn solve(m: &TriDiag, f: &[f64]) -> Vec<f64> {
    thomas(&m.b, &m.a, &m.c, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let m = TriDiag::constant(5, 0.0, 1.0, 0.0);
        let f = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(solve(&m, &f), f);
    }

    #[test]
    fn solves_poisson_1d() {
        // -u'' = 1 on (0,1), u(0)=u(1)=0, 2nd order FD: exact x(1-x)/2 at nodes.
        let n = 63;
        let h = 1.0 / (n as f64 + 1.0);
        let m = TriDiag::constant(n, -1.0, 2.0, -1.0);
        let f = vec![h * h; n];
        let x = solve(&m, &f);
        for i in 0..n {
            let xi = (i as f64 + 1.0) * h;
            let exact = xi * (1.0 - xi) / 2.0;
            assert!((x[i] - exact).abs() < 1e-12, "i={i}: {} vs {exact}", x[i]);
        }
    }

    #[test]
    fn random_dd_is_diagonally_dominant() {
        for seed in [1, 2, 42] {
            let m = TriDiag::random_dd(100, seed);
            for i in 0..100 {
                assert!(m.a[i].abs() > m.b[i].abs() + m.c[i].abs());
            }
            assert_eq!(m.b[0], 0.0);
            assert_eq!(m.c[99], 0.0);
        }
    }

    #[test]
    fn random_dd_reproducible() {
        assert_eq!(TriDiag::random_dd(50, 7), TriDiag::random_dd(50, 7));
        assert_ne!(TriDiag::random_dd(50, 7), TriDiag::random_dd(50, 8));
    }

    #[test]
    fn thomas_inverts_apply() {
        for n in [1, 2, 3, 10, 257] {
            let m = TriDiag::random_dd(n, n as u64);
            let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
            let f = m.apply(&x_true);
            let x = solve(&m, &f);
            for i in 0..n {
                assert!((x[i] - x_true[i]).abs() < 1e-9, "n={n} i={i}");
            }
            assert!(m.residual_inf(&x, &f) < 1e-9);
        }
    }

    #[test]
    fn single_equation() {
        let x = thomas(&[0.0], &[4.0], &[0.0], &[8.0]);
        assert_eq!(x, vec![2.0]);
    }
}
