//! # kali-kernels — one-dimensional kernel algorithms (paper §3)
//!
//! The paper treats tridiagonal solvers as the archetypal "one-dimensional
//! kernel" from which tensor product algorithms are assembled, and names
//! cubic-spline fitting and FFTs as the other members of the family. This
//! crate implements all of them, sequentially and distributed:
//!
//! * [`tridiag`] — tridiagonal systems, the sequential Thomas algorithm,
//!   and diagonally dominant test-system generators;
//! * [`substructure`] — the block elimination of Figures 1 and 2 (interior
//!   elimination with fill-in confined to the block's end columns) and the
//!   Figure 4 interior back-substitution;
//! * [`tri_dist()`](tri_dist::tri_dist) — Listing 4: the substructured ("spike"-variant)
//!   divide-and-conquer solver on a 1-D processor array, using the
//!   shuffle/unshuffle level mapping of Listing 5 / Figure 5;
//! * [`mtrix()`](mtrix::mtrix) — Listing 6: the pipelined multi-system solver that keeps
//!   all level sets of Figure 3's data-flow graph busy simultaneously;
//! * [`cyclic_reduction`] — the classical alternative parallel tridiagonal
//!   algorithm, as a sequential baseline (reference \[8\] of the paper);
//! * [`fft`] — radix-2 FFT, sequential and distributed (binary exchange);
//! * [`spline`] — natural cubic spline fitting built on the tridiagonal
//!   kernels.

pub mod cyclic_reduction;
pub mod fft;
pub mod mtrix;
pub mod spline;
pub mod substructure;
pub mod tri_dist;
pub mod tridiag;

pub use mtrix::{mtrix, TriLocal};
pub use tri_dist::{tri_dist, tri_dist_const};
pub use tridiag::{thomas, TriDiag};
