//! Radix-2 FFT — one of the "other one-dimensional kernels" the paper
//! names alongside tridiagonal solvers (§3). Sequential decimation in
//! frequency plus a distributed binary-exchange variant on a block-
//! distributed vector.

use kali_machine::{tag, Wire, NS_KERNEL};
use kali_runtime::Ctx;

/// A complex number (the crate avoids external numeric dependencies).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Complex {
    pub re: f64,
    pub im: f64,
}

impl Complex {
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };

    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// `e^{iθ}`.
    pub fn cis(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    pub fn norm(self) -> f64 {
        (self.re * self.re + self.im * self.im).sqrt()
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;
    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }
}

impl std::ops::Sub for Complex {
    type Output = Complex;
    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }
}

impl std::ops::Mul for Complex {
    type Output = Complex;
    fn mul(self, o: Complex) -> Complex {
        Complex::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl Wire for Complex {
    fn wire_words(&self) -> usize {
        2
    }
}

/// In-place DIF FFT: natural-order input, bit-reversed output.
pub fn fft_dif(x: &mut [Complex]) {
    let n = x.len();
    assert!(n.is_power_of_two(), "radix-2 FFT needs a power-of-two size");
    let mut l = n;
    while l >= 2 {
        let h = l / 2;
        for start in (0..n).step_by(l) {
            for j in 0..h {
                let w = Complex::cis(-2.0 * std::f64::consts::PI * j as f64 / l as f64);
                let u = x[start + j];
                let v = x[start + j + h];
                x[start + j] = u + v;
                x[start + j + h] = (u - v) * w;
            }
        }
        l = h;
    }
}

/// Permute a bit-reversed-order vector to natural order (or vice versa).
pub fn bit_reverse_permute(x: &mut [Complex]) {
    let n = x.len();
    assert!(n.is_power_of_two());
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            x.swap(i, j);
        }
    }
}

/// Forward FFT with natural-order output.
pub fn fft(x: &mut [Complex]) {
    fft_dif(x);
    bit_reverse_permute(x);
}

/// O(n²) reference DFT.
pub fn naive_dft(x: &[Complex]) -> Vec<Complex> {
    let n = x.len();
    (0..n)
        .map(|k| {
            let mut s = Complex::ZERO;
            for (j, &v) in x.iter().enumerate() {
                s = s + v * Complex::cis(-2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64);
            }
            s
        })
        .collect()
}

/// Flop estimate of an n-point radix-2 FFT (10 per butterfly).
pub fn fft_flops(n: usize) -> f64 {
    if n < 2 {
        return 0.0;
    }
    10.0 * (n / 2) as f64 * (n.trailing_zeros() as f64)
}

/// Distributed DIF FFT (binary exchange) over the current 1-D
/// power-of-two processor array.
///
/// `local` is this processor's block (natural order, block distribution);
/// the result is this processor's block of the *bit-reversed-order*
/// spectrum. Stages whose butterfly span exceeds the block size exchange
/// whole blocks with the partner processor; the rest are local.
pub fn fft_dist(ctx: &mut Ctx, n: usize, mut local: Vec<Complex>) -> Vec<Complex> {
    let grid = ctx.grid().clone();
    let Some(me) = grid.index_of(ctx.rank()) else {
        return Vec::new();
    };
    let p = grid.size();
    if p == 1 {
        ctx.proc().compute(fft_flops(n));
        fft_dif(&mut local);
        return local;
    }
    assert!(n.is_power_of_two() && p.is_power_of_two());
    assert!(n >= 2 * p, "need at least two points per processor");
    let nb = n / p;
    assert_eq!(local.len(), nb);
    let team: Vec<usize> = grid.ranks().to_vec();
    let base = me * nb;

    let mut l = n;
    while l >= 2 {
        let h = l / 2;
        if h >= nb {
            // Remote stage: my whole block pairs with the block `h` away.
            let pdist = h / nb;
            let low = (me / pdist).is_multiple_of(2);
            let partner = if low { me + pdist } else { me - pdist };
            let t = tag(NS_KERNEL, 0xFF_0000 | l as u64);
            ctx.proc().send(team[partner], t, local.clone());
            let theirs: Vec<Complex> = ctx.proc().recv(team[partner], t);
            for j in 0..nb {
                if low {
                    local[j] = local[j] + theirs[j];
                } else {
                    let gi = base + j; // my element is the "+h" member
                    let jj = (gi % l) - h;
                    let w = Complex::cis(-2.0 * std::f64::consts::PI * jj as f64 / l as f64);
                    local[j] = (theirs[j] - local[j]) * w;
                }
            }
            ctx.proc().compute(10.0 * nb as f64);
        } else {
            // Local stage: groups of size l fit inside the block.
            for start in (0..nb).step_by(l) {
                for j in 0..h {
                    let w = Complex::cis(-2.0 * std::f64::consts::PI * j as f64 / l as f64);
                    let u = local[start + j];
                    let v = local[start + j + h];
                    local[start + j] = u + v;
                    local[start + j + h] = (u - v) * w;
                }
            }
            ctx.proc().compute(10.0 * (nb / 2) as f64);
        }
        l = h;
    }
    local
}

#[cfg(test)]
mod tests {
    use super::*;
    use kali_grid::ProcGrid;
    use kali_machine::{CostModel, Machine, MachineConfig};
    use std::time::Duration;

    fn cfg(p: usize) -> MachineConfig {
        MachineConfig::new(p)
            .with_cost(CostModel::unit())
            .with_watchdog(Duration::from_secs(20))
    }

    fn test_signal(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| {
                Complex::new(
                    (i as f64 * 0.31).sin() + 0.2 * (i as f64 * 1.7).cos(),
                    0.1 * (i as f64 * 0.13).cos(),
                )
            })
            .collect()
    }

    #[test]
    fn fft_matches_naive_dft() {
        for n in [2usize, 4, 8, 64, 256] {
            let x = test_signal(n);
            let mut y = x.clone();
            fft(&mut y);
            let z = naive_dft(&x);
            for k in 0..n {
                assert!((y[k] - z[k]).norm() < 1e-8 * n as f64, "n={n} k={k}");
            }
        }
    }

    #[test]
    fn bit_reverse_is_involution() {
        let mut x = test_signal(32);
        let orig = x.clone();
        bit_reverse_permute(&mut x);
        assert_ne!(x, orig);
        bit_reverse_permute(&mut x);
        assert_eq!(x, orig);
    }

    #[test]
    fn parseval_energy_conserved() {
        let n = 128;
        let x = test_signal(n);
        let mut y = x.clone();
        fft(&mut y);
        let ex: f64 = x.iter().map(|v| v.norm() * v.norm()).sum();
        let ey: f64 = y.iter().map(|v| v.norm() * v.norm()).sum::<f64>() / n as f64;
        assert!((ex - ey).abs() < 1e-8 * ex);
    }

    #[test]
    fn distributed_fft_matches_sequential() {
        for p in [1usize, 2, 4, 8] {
            let n = 64;
            let x = test_signal(n);
            let x2 = x.clone();
            let run = Machine::run(cfg(p), move |proc| {
                let grid = ProcGrid::new_1d(proc.nprocs());
                let nb = n / proc.nprocs();
                let base = proc.rank() * nb;
                let local = x2[base..base + nb].to_vec();
                let mut ctx = Ctx::new(proc, grid);
                fft_dist(&mut ctx, n, local)
            });
            let mut gathered = Vec::new();
            for piece in &run.results {
                gathered.extend_from_slice(piece);
            }
            bit_reverse_permute(&mut gathered);
            let z = naive_dft(&x);
            for k in 0..n {
                assert!((gathered[k] - z[k]).norm() < 1e-8 * n as f64, "p={p} k={k}");
            }
        }
    }

    #[test]
    fn exchange_stage_count_is_log_p() {
        let n = 256;
        let p = 8;
        let x = test_signal(n);
        let run = Machine::run(cfg(p), move |proc| {
            let grid = ProcGrid::new_1d(proc.nprocs());
            let nb = n / proc.nprocs();
            let base = proc.rank() * nb;
            let local = x[base..base + nb].to_vec();
            let mut ctx = Ctx::new(proc, grid);
            fft_dist(&mut ctx, n, local);
        });
        // log2(p) = 3 exchange stages, one message each way per proc.
        assert_eq!(run.report.total_msgs as usize, p * 3);
    }
}
