//! Block substructuring: the elimination of Figures 1 and 2 and the
//! interior back-substitution of Figure 4.
//!
//! Given a contiguous block of rows `lo..hi` of a tridiagonal system,
//! [`reduce_block`] eliminates the sub-diagonal downward from row `lo+2`
//! (fill-in confined to column `lo`) and the super-diagonal upward from row
//! `hi−2` (fill-in confined to column `hi`), in place. Afterwards (local
//! indices `0..m`):
//!
//! * row `0`:    `b[0]·x_out_left + a[0]·x_0 + c[0]·x_{m−1} = f[0]`
//! * row `m−1`:  `b[m−1]·x_0 + a[m−1]·x_{m−1} + c[m−1]·x_out_right = f[m−1]`
//! * interior `i`: `b[i]·x_0 + a[i]·x_i + c[i]·x_{m−1} = f[i]`
//!
//! so the first and last rows of every block form a tridiagonal *reduced
//! system* of two rows per block ("rows l₁, u₁, l₂, u₂, … now constitute a
//! tridiagonal system having 2p equations"), and once `x_0` and `x_{m−1}`
//! are known every interior value follows in O(1) per row
//! ([`interior_solve`], Figure 4).

/// In-place substructuring of one block (the paper's `reduce` routine).
///
/// `m = b.len()` must be ≥ 2; `m == 2` is a no-op (the rows are already a
/// boundary pair). Coefficient slots are reused: after the call `b[i]`
/// holds the coupling to the block's first unknown and `c[i]` the coupling
/// to its last (for interior rows), while rows `0` and `m−1` keep their
/// outside couplings in `b[0]` / `c[m−1]`.
pub fn reduce_block(b: &mut [f64], a: &mut [f64], c: &mut [f64], f: &mut [f64]) {
    let m = b.len();
    assert!(m >= 2, "substructuring needs at least two rows per block");
    assert!(a.len() == m && c.len() == m && f.len() == m);
    // Downward sweep: eliminate the sub-diagonal of rows lo+2..=hi,
    // introducing fill-in in column lo (local column 0).
    for i in 2..m {
        let w = b[i] / a[i - 1];
        b[i] = -w * b[i - 1];
        a[i] -= w * c[i - 1];
        f[i] -= w * f[i - 1];
    }
    // Upward sweep: eliminate the super-diagonal of rows hi−2..=lo,
    // introducing fill-in in column hi (local column m−1). Row m−2 is
    // already in target form (its c couples to column m−1).
    for i in (0..m.saturating_sub(2)).rev() {
        let w = c[i] / a[i + 1];
        if i >= 1 {
            b[i] -= w * b[i + 1];
        } else {
            // Row 1's column-0 entry folds into row 0's diagonal.
            a[0] -= w * b[1];
        }
        c[i] = -w * c[i + 1];
        f[i] -= w * f[i + 1];
    }
}

/// Flop cost of [`reduce_block`] on an `m`-row block (for virtual-time
/// accounting): two sweeps of ~6 flops per eliminated row.
pub fn reduce_flops(m: usize) -> f64 {
    12.0 * m.saturating_sub(2) as f64
}

/// Figure 4: given the solved end values `x0 = x_0` and `xm = x_{m−1}` of a
/// reduced block, recover the interior values. Returns the full block
/// solution `[x0, x_1, …, x_{m−2}, xm]`.
pub fn interior_solve(b: &[f64], a: &[f64], c: &[f64], f: &[f64], x0: f64, xm: f64) -> Vec<f64> {
    let m = b.len();
    assert!(m >= 2);
    let mut x = vec![0.0; m];
    x[0] = x0;
    x[m - 1] = xm;
    for i in 1..m - 1 {
        x[i] = (f[i] - b[i] * x0 - c[i] * xm) / a[i];
    }
    x
}

/// Flop cost of [`interior_solve`].
pub fn interior_flops(m: usize) -> f64 {
    5.0 * m.saturating_sub(2) as f64
}

/// The boundary pair of a reduced block: rows 0 and m−1 as
/// `(b, a, c, f)` quadruples — the two equations each processor "mails"
/// in the reduction tree.
pub fn boundary_pair(b: &[f64], a: &[f64], c: &[f64], f: &[f64]) -> [[f64; 4]; 2] {
    let m = b.len();
    [
        [b[0], a[0], c[0], f[0]],
        [b[m - 1], a[m - 1], c[m - 1], f[m - 1]],
    ]
}

/// Sparsity pattern (global column indices of nonzero entries, in order)
/// of each row of a reduced block — used to regenerate Figure 1/2's
/// structure plots. `lo..=hi` are the block's global rows within an
/// `n`-row system.
pub fn reduced_pattern(lo: usize, hi: usize, n: usize) -> Vec<Vec<usize>> {
    let m = hi - lo + 1;
    (0..m)
        .map(|i| {
            let g = lo + i;
            let mut cols = Vec::new();
            if i == 0 {
                // b -> outside left (if any), a -> lo, c -> hi
                if lo > 0 {
                    cols.push(lo - 1);
                }
                cols.push(lo);
                if m > 1 {
                    cols.push(hi);
                }
            } else if i == m - 1 {
                cols.push(lo);
                cols.push(hi);
                if hi + 1 < n {
                    cols.push(hi + 1);
                }
            } else {
                cols.push(lo);
                cols.push(g);
                cols.push(hi);
            }
            cols
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tridiag::{thomas, TriDiag};

    /// Verify that the transformed rows are *equations satisfied by the true
    /// solution* with the documented sparsity — this pins down the exact
    /// semantics of Figures 1 and 2.
    fn check_block(n: usize, lo: usize, hi: usize, seed: u64) {
        let m = TriDiag::random_dd(n, seed);
        let x_true: Vec<f64> = (0..n).map(|i| ((i * 7 + 3) % 11) as f64 - 5.0).collect();
        let f = m.apply(&x_true);
        let mut b: Vec<f64> = m.b[lo..=hi].to_vec();
        let mut a: Vec<f64> = m.a[lo..=hi].to_vec();
        let mut c: Vec<f64> = m.c[lo..=hi].to_vec();
        let mut ff: Vec<f64> = f[lo..=hi].to_vec();
        reduce_block(&mut b, &mut a, &mut c, &mut ff);
        let mm = hi - lo + 1;
        let tol = 1e-8;
        // Row 0: b*x[lo-1] + a*x[lo] + c*x[hi] = f
        let out_l = if lo > 0 { x_true[lo - 1] } else { 0.0 };
        let r0 = b[0] * out_l + a[0] * x_true[lo] + c[0] * x_true[hi] - ff[0];
        assert!(r0.abs() < tol, "row 0 residual {r0}");
        // Row m-1: b*x[lo] + a*x[hi] + c*x[hi+1] = f
        let out_r = if hi + 1 < n { x_true[hi + 1] } else { 0.0 };
        let rm = b[mm - 1] * x_true[lo] + a[mm - 1] * x_true[hi] + c[mm - 1] * out_r - ff[mm - 1];
        assert!(rm.abs() < tol, "row m-1 residual {rm}");
        // Interior rows couple only (lo, self, hi).
        for i in 1..mm - 1 {
            let ri = b[i] * x_true[lo] + a[i] * x_true[lo + i] + c[i] * x_true[hi] - ff[i];
            assert!(ri.abs() < tol, "interior row {i} residual {ri}");
        }
        // Figure 4: interiors recoverable from the end values alone.
        let x = interior_solve(&b, &a, &c, &ff, x_true[lo], x_true[hi]);
        for i in 0..mm {
            assert!(
                (x[i] - x_true[lo + i]).abs() < tol,
                "interior solve row {i}"
            );
        }
    }

    #[test]
    fn first_middle_last_blocks() {
        check_block(32, 0, 7, 1); // first block (b[0] = 0)
        check_block(32, 8, 15, 2); // middle block
        check_block(32, 24, 31, 3); // last block (c[n-1] = 0)
    }

    #[test]
    fn four_row_block_figure2() {
        check_block(16, 4, 7, 9);
        check_block(8, 0, 3, 10);
        check_block(8, 4, 7, 11);
    }

    #[test]
    fn two_row_block_is_noop() {
        let m = TriDiag::random_dd(8, 5);
        let mut b: Vec<f64> = m.b[2..=3].to_vec();
        let mut a: Vec<f64> = m.a[2..=3].to_vec();
        let mut c: Vec<f64> = m.c[2..=3].to_vec();
        let mut f = vec![1.0, 2.0];
        let (b0, a0, c0, f0) = (b.clone(), a.clone(), c.clone(), f.clone());
        reduce_block(&mut b, &mut a, &mut c, &mut f);
        assert_eq!((b, a, c, f), (b0, a0, c0, f0));
    }

    #[test]
    fn three_row_block() {
        check_block(12, 3, 5, 21);
    }

    #[test]
    fn odd_sized_blocks() {
        check_block(37, 5, 17, 33);
        check_block(37, 18, 36, 34);
    }

    #[test]
    fn reduced_system_of_pairs_is_tridiagonal_and_consistent() {
        // Reduce 4 blocks of 8 and solve the assembled 2p reduced system
        // directly — it must reproduce the true boundary values. This is
        // exactly the "2p equations" claim under Figure 1.
        let n = 32;
        let p = 4;
        let m = TriDiag::random_dd(n, 77);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.21).cos()).collect();
        let f = m.apply(&x_true);
        let mut rb = Vec::new();
        let mut ra = Vec::new();
        let mut rc = Vec::new();
        let mut rf = Vec::new();
        for q in 0..p {
            let lo = q * n / p;
            let hi = (q + 1) * n / p - 1;
            let mut b: Vec<f64> = m.b[lo..=hi].to_vec();
            let mut a: Vec<f64> = m.a[lo..=hi].to_vec();
            let mut c: Vec<f64> = m.c[lo..=hi].to_vec();
            let mut ff: Vec<f64> = f[lo..=hi].to_vec();
            reduce_block(&mut b, &mut a, &mut c, &mut ff);
            for pair in boundary_pair(&b, &a, &c, &ff) {
                rb.push(pair[0]);
                ra.push(pair[1]);
                rc.push(pair[2]);
                rf.push(pair[3]);
            }
        }
        // The assembled reduced system is tridiagonal in the ordering
        // (l1, u1, l2, u2, ...): solve and compare to the true values.
        rb[0] = 0.0;
        let last = rb.len() - 1;
        rc[last] = 0.0;
        let y = thomas(&rb, &ra, &rc, &rf);
        for q in 0..p {
            let lo = q * n / p;
            let hi = (q + 1) * n / p - 1;
            assert!((y[2 * q] - x_true[lo]).abs() < 1e-8, "block {q} lo");
            assert!((y[2 * q + 1] - x_true[hi]).abs() < 1e-8, "block {q} hi");
        }
    }

    #[test]
    fn pattern_matches_figure_1() {
        // Middle block of 4 rows in a 16-row system, rows 4..=7.
        let pat = reduced_pattern(4, 7, 16);
        assert_eq!(pat[0], vec![3, 4, 7]); // outside-left, lo, hi
        assert_eq!(pat[1], vec![4, 5, 7]); // lo, self, hi
        assert_eq!(pat[2], vec![4, 6, 7]);
        assert_eq!(pat[3], vec![4, 7, 8]); // lo, hi, outside-right
                                           // First block has no outside-left column.
        let pat0 = reduced_pattern(0, 3, 16);
        assert_eq!(pat0[0], vec![0, 3]);
    }

    #[test]
    fn flop_counters_scale_linearly() {
        assert_eq!(reduce_flops(2), 0.0);
        assert_eq!(reduce_flops(10), 96.0);
        assert_eq!(interior_flops(4), 10.0);
    }
}
