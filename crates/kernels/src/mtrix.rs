//! Listing 6: the pipelined multi-system tridiagonal solver.
//!
//! Because the unshuffle mapping (Figure 5) places each reduction level on a
//! *disjoint* set of processors, solving `m` systems can be software
//! pipelined: at global phase `t`, level `l` of the tree works on system
//! `t − l` while level `l+1` works on system `t − l − 1`, and the
//! substitution wave follows the reduction wave back down. The whole batch
//! completes in `m + 2k` phases instead of the `m · (2k + 1)` phases of `m`
//! back-to-back calls to [`crate::tri_dist::tri_dist`], and every level set
//! stays busy once the pipe is full — the paper's motivation for `mtrix`.

use std::collections::HashMap;

use kali_runtime::Ctx;

use crate::substructure::{
    boundary_pair, interior_flops, interior_solve, reduce_block, reduce_flops,
};
use crate::tri_dist::{four_rows, ktag, level_set, pair_msg, source_set, PairMsg};
use crate::tridiag::{thomas, thomas_flops};

const UP: u64 = 0;
const DOWN: u64 = 1;

/// One processor's block of one tridiagonal system: diagonals and
/// right-hand side over the block's rows.
#[derive(Debug, Clone)]
pub struct TriLocal {
    pub b: Vec<f64>,
    pub a: Vec<f64>,
    pub c: Vec<f64>,
    pub f: Vec<f64>,
}

impl TriLocal {
    /// Constant-coefficient block for global rows `lo..lo+m` of an `n`-row
    /// system.
    pub fn constant(n: usize, lo: usize, m: usize, b0: f64, a0: f64, c0: f64, f: Vec<f64>) -> Self {
        assert_eq!(f.len(), m);
        let mut b = vec![b0; m];
        let mut c = vec![c0; m];
        if lo == 0 && m > 0 {
            b[0] = 0.0;
        }
        if lo + m == n && m > 0 {
            c[m - 1] = 0.0;
        }
        TriLocal {
            b,
            a: vec![a0; m],
            c,
            f,
        }
    }

    fn len(&self) -> usize {
        self.b.len()
    }
}

/// Solve `m` block-distributed tridiagonal systems of size `n` over the
/// current (1-D, power-of-two) processor array, pipelining the reduction
/// and substitution trees across systems.
///
/// `systems[j]` is this processor's block of system `j`; the result is the
/// matching blocks of the solutions. Non-members return an empty vector.
pub fn mtrix(ctx: &mut Ctx, n: usize, systems: Vec<TriLocal>) -> Vec<Vec<f64>> {
    let grid = ctx.grid().clone();
    let Some(me) = grid.index_of(ctx.rank()) else {
        return Vec::new();
    };
    let p = grid.size();
    let m = systems.len();
    if m == 0 {
        return Vec::new();
    }
    if p == 1 {
        return systems
            .into_iter()
            .map(|s| {
                ctx.proc().compute(thomas_flops(s.len()));
                thomas(&s.b, &s.a, &s.c, &s.f)
            })
            .collect();
    }
    assert!(p.is_power_of_two(), "mtrix needs a power-of-two team");
    assert!(n >= 2 * p, "mtrix needs at least 2 rows per processor");
    let k = p.trailing_zeros() as usize;
    let team: Vec<usize> = grid.ranks().to_vec();

    // Which levels is this processor a destination of? (at most one, plus
    // it is always a level-1 source.)
    let my_dest_level: Option<(usize, usize)> =
        (1..=k).find_map(|s| level_set(p, s).position(|i| i == me).map(|j| (s, j)));

    // Saved reduced blocks: level-0 per system, and (sys, level) four-row
    // blocks for this processor's destination level.
    let mut level0: Vec<Option<TriLocal>> = vec![None; m];
    let mut saved4: HashMap<usize, ([f64; 4], [f64; 4], [f64; 4], [f64; 4])> = HashMap::new();
    let mut x4: HashMap<usize, Vec<f64>> = HashMap::new();
    let mut x_out: Vec<Vec<f64>> = vec![Vec::new(); m];
    let mut systems: Vec<Option<TriLocal>> = systems.into_iter().map(Some).collect();

    let dests1: Vec<usize> = level_set(p, 1).collect();

    for t in 0..(m + 2 * k) {
        // --- Level-0 reduction duty: start system t into the pipe.
        if t < m {
            let mut s0 = systems[t].take().expect("system consumed once");
            ctx.proc().mark(format!("mtrix:reduce:s=0:sys={t}"));
            reduce_block(&mut s0.b, &mut s0.a, &mut s0.c, &mut s0.f);
            ctx.proc().compute(reduce_flops(s0.len()));
            let pair = pair_msg(boundary_pair(&s0.b, &s0.a, &s0.c, &s0.f));
            level0[t] = Some(s0);
            let dest = dests1[me / 2];
            ctx.proc().send(team[dest], ktag(UP, 1, t), pair);
        }

        // --- Tree reduction duty at my destination level.
        if let Some((l, j)) = my_dest_level {
            if t >= l && t - l < m {
                let sys = t - l;
                let sources: Vec<usize> = source_set(p, l).collect();
                let lo: PairMsg = ctx.proc().recv(team[sources[2 * j]], ktag(UP, l, sys));
                let hi: PairMsg = ctx.proc().recv(team[sources[2 * j + 1]], ktag(UP, l, sys));
                let (mut rb, mut ra, mut rc, mut rf) = four_rows(&lo, &hi);
                ctx.proc().mark(format!("mtrix:reduce:s={l}:sys={sys}"));
                if l < k {
                    reduce_block(&mut rb, &mut ra, &mut rc, &mut rf);
                    ctx.proc().compute(reduce_flops(4));
                    saved4.insert(sys, (rb, ra, rc, rf));
                    let pair =
                        pair_msg([[rb[0], ra[0], rc[0], rf[0]], [rb[3], ra[3], rc[3], rf[3]]]);
                    let updests: Vec<usize> = level_set(p, l + 1).collect();
                    let qidx = source_set(p, l + 1)
                        .position(|i| i == me)
                        .expect("dest of level l is a source of level l+1");
                    ctx.proc()
                        .send(team[updests[qidx / 2]], ktag(UP, l + 1, sys), pair);
                } else {
                    // Root: solve and immediately start the downward wave.
                    let x = thomas(&rb, &ra, &rc, &rf);
                    ctx.proc().compute(thomas_flops(4));
                    ctx.proc().mark(format!("mtrix:solve:sys={sys}"));
                    ctx.proc()
                        .send(team[sources[2 * j]], ktag(DOWN, k, sys), vec![x[0], x[1]]);
                    ctx.proc().send(
                        team[sources[2 * j + 1]],
                        ktag(DOWN, k, sys),
                        vec![x[2], x[3]],
                    );
                }
            }
        }

        // --- Substitution duty as a source of level l ≥ 2 (I am the
        //     level-(l−1) destination).
        if let Some((lm1, _)) = my_dest_level {
            let l = lm1 + 1;
            if l <= k {
                // I receive my block's end values for system t − 2k + l − 1.
                if t + l > 2 * k && t + l - 2 * k - 1 < m {
                    let sys = t + l - 2 * k - 1;
                    let sources: Vec<usize> = source_set(p, l).collect();
                    let dests: Vec<usize> = level_set(p, l).collect();
                    let qidx = sources.iter().position(|&i| i == me).expect("source");
                    let ends: Vec<f64> = ctx.proc().recv(team[dests[qidx / 2]], ktag(DOWN, l, sys));
                    let (sb, sa, sc, sf) = saved4.remove(&sys).expect("saved block");
                    let v = interior_solve(&sb, &sa, &sc, &sf, ends[0], ends[1]);
                    ctx.proc().compute(interior_flops(4));
                    ctx.proc().mark(format!("mtrix:subst:s={lm1}:sys={sys}"));
                    x4.insert(sys, v);
                    // Forward halves to my own sources (level lm1).
                    let my_sources: Vec<usize> = source_set(p, lm1).collect();
                    let j = level_set(p, lm1).position(|i| i == me).expect("dest");
                    let v = &x4[&sys];
                    ctx.proc().send(
                        team[my_sources[2 * j]],
                        ktag(DOWN, lm1, sys),
                        vec![v[0], v[1]],
                    );
                    ctx.proc().send(
                        team[my_sources[2 * j + 1]],
                        ktag(DOWN, lm1, sys),
                        vec![v[2], v[3]],
                    );
                    x4.remove(&sys);
                }
            }
        }

        // --- Final substitution duty (everyone is a level-1 source).
        if t + 1 > 2 * k && t - 2 * k < m {
            let sys = t - 2 * k;
            let qidx = me;
            let dest = dests1[qidx / 2];
            let ends: Vec<f64> = ctx.proc().recv(team[dest], ktag(DOWN, 1, sys));
            let s0 = level0[sys].take().expect("level-0 block saved");
            ctx.proc().mark(format!("mtrix:subst:s=0:sys={sys}"));
            x_out[sys] = interior_solve(&s0.b, &s0.a, &s0.c, &s0.f, ends[0], ends[1]);
            ctx.proc().compute(interior_flops(s0.len()));
        }
    }
    x_out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tridiag::TriDiag;
    use kali_grid::{Dist1, ProcGrid};
    use kali_machine::{CostModel, Machine, MachineConfig};
    use std::time::Duration;

    fn cfg(p: usize) -> MachineConfig {
        MachineConfig::new(p)
            .with_cost(CostModel::unit())
            .with_watchdog(Duration::from_secs(30))
    }

    fn solve_batch(
        n: usize,
        p: usize,
        m: usize,
        seed: u64,
    ) -> (Vec<Vec<Vec<f64>>>, kali_machine::RunReport) {
        let sys: Vec<TriDiag> = (0..m)
            .map(|j| TriDiag::random_dd(n, seed + j as u64))
            .collect();
        let xs: Vec<Vec<f64>> = (0..m)
            .map(|j| (0..n).map(|i| ((i + j) as f64 * 0.13).sin()).collect())
            .collect();
        let fs: Vec<Vec<f64>> = sys.iter().zip(&xs).map(|(s, x)| s.apply(x)).collect();
        let run = {
            let sys = sys.clone();
            let fs = fs.clone();
            Machine::run(cfg(p), move |proc| {
                let grid = ProcGrid::new_1d(proc.nprocs());
                let dist = Dist1::block(n, proc.nprocs());
                let me = proc.rank();
                let lo = dist.lower(me).unwrap();
                let hi = dist.upper(me).unwrap() + 1;
                let locals: Vec<TriLocal> = (0..m)
                    .map(|j| TriLocal {
                        b: sys[j].b[lo..hi].to_vec(),
                        a: sys[j].a[lo..hi].to_vec(),
                        c: sys[j].c[lo..hi].to_vec(),
                        f: fs[j][lo..hi].to_vec(),
                    })
                    .collect();
                let mut ctx = Ctx::new(proc, grid);
                mtrix(&mut ctx, n, locals)
            })
        };
        // Reassemble and verify.
        for j in 0..m {
            let mut x = Vec::new();
            for piece in &run.results {
                x.extend_from_slice(&piece[j]);
            }
            let err = x
                .iter()
                .zip(&xs[j])
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            assert!(err < 1e-8, "system {j}: max err {err}");
        }
        (run.results.clone(), run.report)
    }

    #[test]
    fn single_system_matches_tri() {
        solve_batch(64, 4, 1, 5);
    }

    #[test]
    fn many_systems_all_correct() {
        solve_batch(64, 4, 7, 11);
        solve_batch(32, 8, 5, 13);
        solve_batch(48, 2, 9, 17);
    }

    #[test]
    fn single_processor_fallback() {
        solve_batch(32, 1, 4, 23);
    }

    #[test]
    fn pipelining_beats_sequential_calls() {
        // m systems through the pipeline vs m back-to-back tri_dist calls.
        let n = 512;
        let p = 8;
        let m = 16;
        let sys: Vec<TriDiag> = (0..m)
            .map(|j| TriDiag::random_dd(n, 100 + j as u64))
            .collect();
        let fs: Vec<Vec<f64>> = sys.iter().map(|s| s.apply(&vec![1.0; n])).collect();

        let piped = {
            let (sys, fs) = (sys.clone(), fs.clone());
            Machine::run(cfg(p), move |proc| {
                let grid = ProcGrid::new_1d(proc.nprocs());
                let dist = Dist1::block(n, proc.nprocs());
                let me = proc.rank();
                let (lo, hi) = (dist.lower(me).unwrap(), dist.upper(me).unwrap() + 1);
                let locals: Vec<TriLocal> = (0..m)
                    .map(|j| TriLocal {
                        b: sys[j].b[lo..hi].to_vec(),
                        a: sys[j].a[lo..hi].to_vec(),
                        c: sys[j].c[lo..hi].to_vec(),
                        f: fs[j][lo..hi].to_vec(),
                    })
                    .collect();
                let mut ctx = Ctx::new(proc, grid);
                mtrix(&mut ctx, n, locals);
            })
        };
        let serial = {
            let (sys, fs) = (sys.clone(), fs.clone());
            Machine::run(cfg(p), move |proc| {
                let grid = ProcGrid::new_1d(proc.nprocs());
                let dist = Dist1::block(n, proc.nprocs());
                let me = proc.rank();
                let (lo, hi) = (dist.lower(me).unwrap(), dist.upper(me).unwrap() + 1);
                let mut ctx = Ctx::new(proc, grid);
                for j in 0..m {
                    crate::tri_dist::tri_dist(
                        &mut ctx,
                        n,
                        &sys[j].b[lo..hi],
                        &sys[j].a[lo..hi],
                        &sys[j].c[lo..hi],
                        &fs[j][lo..hi],
                    );
                }
            })
        };
        assert!(
            piped.report.elapsed < serial.report.elapsed,
            "pipelined {} vs serial {}",
            piped.report.elapsed,
            serial.report.elapsed
        );
        // Utilization should improve too (paper's point about keeping
        // processors busy).
        assert!(piped.report.utilization() > serial.report.utilization());
    }

    #[test]
    fn phase_schedule_is_deterministic() {
        let (_, r1) = solve_batch(64, 4, 5, 41);
        let (_, r2) = solve_batch(64, 4, 5, 41);
        assert_eq!(r1.elapsed, r2.elapsed);
        assert_eq!(r1.total_words, r2.total_words);
    }

    #[test]
    fn constant_block_builder_sets_global_ends() {
        let t = TriLocal::constant(16, 0, 4, -1.0, 4.0, -1.0, vec![1.0; 4]);
        assert_eq!(t.b[0], 0.0);
        assert_eq!(t.c[3], -1.0);
        let t = TriLocal::constant(16, 12, 4, -1.0, 4.0, -1.0, vec![1.0; 4]);
        assert_eq!(t.b[0], -1.0);
        assert_eq!(t.c[3], 0.0);
    }
}
