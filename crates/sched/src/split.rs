//! Interior/boundary partitions of owned iteration sets.
//!
//! The split-phase engine's compiled forms partition each processor's
//! owned iterations into an *interior* (whose stencil footprint stays
//! inside the owned block, so it reads no ghost and can run while posted
//! messages are in flight) and a *boundary* (everything else, run after
//! completion). These partitions are schedule-subsystem logic — the
//! compiled-path mirror of [`crate::CommSchedule::boundary`] — so the
//! clamp subtleties live here, once.

/// The interior/boundary partition of a 1-D owned range: the iterations
/// of `range ∩ owned`, split into the indices at least `margin` inside
/// the owned block and the rest.
#[derive(Debug, Clone, Copy)]
pub struct SplitRange1 {
    start: usize,
    end: usize,
    is0: usize,
    is1: usize,
}

impl SplitRange1 {
    pub fn new(
        owned: std::ops::Range<usize>,
        range: std::ops::Range<usize>,
        margin: usize,
    ) -> SplitRange1 {
        let start = range.start.max(owned.start);
        let end = range.end.min(owned.end);
        let is0 = start.max(owned.start + margin);
        let is1 = end.min(owned.end.saturating_sub(margin)).max(is0);
        SplitRange1 {
            start,
            end,
            is0,
            is1,
        }
    }

    /// Number of interior indices.
    pub fn interior_count(&self) -> usize {
        self.is1 - self.is0
    }

    /// Number of boundary indices.
    pub fn boundary_count(&self) -> usize {
        self.end.saturating_sub(self.start) - self.interior_count()
    }

    /// Visit the interior indices in ascending order.
    pub fn for_interior(&self, mut f: impl FnMut(usize)) {
        for i in self.is0..self.is1 {
            f(i);
        }
    }

    /// Visit the boundary indices (covered range minus interior): the low
    /// edge ascending, then the high edge ascending.
    pub fn for_boundary(&self, mut f: impl FnMut(usize)) {
        for i in self.start..self.is0.min(self.end) {
            f(i);
        }
        for i in self.is1.max(self.start)..self.end {
            f(i);
        }
    }
}

/// The interior/boundary partition of a 2-D owned box: the iterations of
/// `range ∩ owned`, split into the *interior* sub-box (every point at
/// least `margin` inside the owned block, so a `margin`-wide stencil
/// footprint reads no ghost) and the *boundary* frame (everything else).
/// One definition shared by the split-phase `doall` forms,
/// `jacobi_update_split` and the split-phase solvers.
#[derive(Debug, Clone, Copy)]
pub struct SplitBox2 {
    i0: usize,
    i1: usize,
    j0: usize,
    j1: usize,
    ii0: usize,
    ii1: usize,
    jj0: usize,
    jj1: usize,
}

impl SplitBox2 {
    /// Partition `r0 × r1` clipped to the owned box, with the interior
    /// shrunk by `margin` against the *owned* block edges.
    pub fn new(
        owned: [std::ops::Range<usize>; 2],
        r0: std::ops::Range<usize>,
        r1: std::ops::Range<usize>,
        margin: [usize; 2],
    ) -> SplitBox2 {
        let i0 = r0.start.max(owned[0].start);
        let i1 = r0.end.min(owned[0].end);
        let j0 = r1.start.max(owned[1].start);
        let j1 = r1.end.min(owned[1].end);
        let ii0 = i0.max(owned[0].start + margin[0]);
        let ii1 = i1.min(owned[0].end.saturating_sub(margin[0])).max(ii0);
        let jj0 = j0.max(owned[1].start + margin[1]);
        let jj1 = j1.min(owned[1].end.saturating_sub(margin[1])).max(jj0);
        SplitBox2 {
            i0,
            i1,
            j0,
            j1,
            ii0,
            ii1,
            jj0,
            jj1,
        }
    }

    /// Number of interior points.
    pub fn interior_count(&self) -> usize {
        (self.ii1 - self.ii0) * (self.jj1 - self.jj0)
    }

    /// Number of boundary points.
    pub fn boundary_count(&self) -> usize {
        self.i1.saturating_sub(self.i0) * self.j1.saturating_sub(self.j0) - self.interior_count()
    }

    /// Visit the interior points in row-major order.
    pub fn for_interior(&self, mut f: impl FnMut(usize, usize)) {
        for i in self.ii0..self.ii1 {
            for j in self.jj0..self.jj1 {
                f(i, j);
            }
        }
    }

    /// Visit the boundary frame (covered box minus interior) in row-major
    /// order.
    pub fn for_boundary(&self, mut f: impl FnMut(usize, usize)) {
        for i in self.i0..self.i1 {
            if i < self.ii0 || i >= self.ii1 {
                for j in self.j0..self.j1 {
                    f(i, j);
                }
            } else {
                for j in self.j0..self.jj0.min(self.j1) {
                    f(i, j);
                }
                for j in self.jj1.max(self.j0)..self.j1 {
                    f(i, j);
                }
            }
        }
    }

    /// The interior as whole-row segments `(i, column range)`, row-major:
    /// exactly the points of [`SplitBox2::for_interior`], emitted as
    /// contiguous column runs so row-form stencil bodies can consume each
    /// visit as slices instead of one call per point.
    pub fn for_interior_rows(&self, mut f: impl FnMut(usize, std::ops::Range<usize>)) {
        if self.jj0 >= self.jj1 {
            return;
        }
        for i in self.ii0..self.ii1 {
            f(i, self.jj0..self.jj1);
        }
    }

    /// The boundary frame as row segments: exactly the points of
    /// [`SplitBox2::for_boundary`], in the same row-major order (full
    /// rows above and below the interior, then the left and right margin
    /// runs of each interior row).
    pub fn for_boundary_rows(&self, mut f: impl FnMut(usize, std::ops::Range<usize>)) {
        for i in self.i0..self.i1 {
            if i < self.ii0 || i >= self.ii1 {
                if self.j0 < self.j1 {
                    f(i, self.j0..self.j1);
                }
            } else {
                let lo = self.j0..self.jj0.min(self.j1);
                if !lo.is_empty() {
                    f(i, lo);
                }
                let hi = self.jj1.max(self.j0)..self.j1;
                if !hi.is_empty() {
                    f(i, hi);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range1_partitions_exactly() {
        for (owned, range, margin) in [
            (4..8, 1..15, 1),
            (0..4, 0..16, 2),
            (3..5, 3..9, 1),
            (0..2, 0..8, 5), // margin swallows the whole block
            (4..8, 9..12, 1),
        ] {
            let s = SplitRange1::new(owned.clone(), range.clone(), margin);
            let mut seen = Vec::new();
            s.for_interior(|i| seen.push(i));
            assert_eq!(seen.len(), s.interior_count());
            for &i in &seen {
                assert!(i >= owned.start + margin && i + margin < owned.end);
            }
            s.for_boundary(|i| seen.push(i));
            assert_eq!(seen.len(), s.interior_count() + s.boundary_count());
            let mut sorted = seen.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), seen.len(), "no index visited twice");
            let want: Vec<usize> = range.filter(|i| owned.contains(i)).collect();
            assert_eq!(sorted, want);
        }
    }

    #[test]
    fn box2_interior_plus_boundary_is_the_covered_box() {
        let s = SplitBox2::new([4..8, 0..4], 1..7, 1..7, [1, 1]);
        let mut pts = Vec::new();
        s.for_interior(|i, j| pts.push((i, j)));
        assert_eq!(pts.len(), s.interior_count());
        s.for_boundary(|i, j| pts.push((i, j)));
        assert_eq!(pts.len(), s.interior_count() + s.boundary_count());
        pts.sort_unstable();
        pts.dedup();
        let want: Vec<(usize, usize)> = (4..7).flat_map(|i| (1..4).map(move |j| (i, j))).collect();
        assert_eq!(pts, want);
    }

    #[test]
    fn box2_row_segments_cover_the_same_points_in_order() {
        for (owned, r0, r1, margin) in [
            ([4..8, 0..4], 1..7, 1..7, [1, 1]),
            ([0..4, 0..4], 0..8, 0..8, [1, 1]),
            ([0..8, 0..8], 1..7, 1..7, [2, 1]),
            ([0..2, 0..2], 0..2, 0..2, [3, 3]), // margin swallows the block
            ([4..8, 4..8], 0..3, 0..3, [1, 1]), // box misses the range
        ] {
            let s = SplitBox2::new(owned, r0, r1, margin);
            let mut pts = Vec::new();
            s.for_interior(|i, j| pts.push((i, j)));
            let mut rows = Vec::new();
            s.for_interior_rows(|i, js| rows.extend(js.map(|j| (i, j))));
            assert_eq!(pts, rows, "interior segments");
            pts.clear();
            rows.clear();
            s.for_boundary(|i, j| pts.push((i, j)));
            s.for_boundary_rows(|i, js| rows.extend(js.map(|j| (i, j))));
            assert_eq!(pts, rows, "boundary segments");
        }
    }

    #[test]
    fn box2_interior_keeps_the_margin() {
        let s = SplitBox2::new([0..4, 0..4], 0..8, 0..8, [1, 1]);
        s.for_interior(|i, j| {
            assert!((1..3).contains(&i) && (1..3).contains(&j));
        });
    }
}
