//! # kali-sched — the shared inspector–executor scheduling engine
//!
//! The paper's central runtime idea is the *inspector/executor* split:
//! analyze a tensor-product loop's communication once, then replay a fused
//! schedule on every later trip. This crate owns that subsystem as
//! first-class, consumer-neutral data and protocols, so the KF1
//! interpreter (`kali-lang`) and the compiled path (`kali-array` /
//! `kali-runtime`) drive one engine instead of two divergent copies:
//!
//! * [`CommSchedule`] / [`ArraySchedule`] — the distilled output of an
//!   inspection: per communicating array, the flat element indices this
//!   processor requests of each peer and the indices each peer will
//!   request of it, plus the interior/boundary partition of the local
//!   iteration set. A schedule is plain data: the interpreter builds one
//!   from an inspector pass over a `doall` body; the distributed-array
//!   halo builds one *analytically* from ghost geometry. Both replay it
//!   through the same executor.
//! * [`ScheduleCache`] — schedules cached under consumer-defined keys
//!   ([`SiteKey`]), with the per-`(site, team)` fresh-construction
//!   ordinals the replay consensus compares.
//! * [`vote`] — the replay-consensus protocols: the pessimistic flat
//!   one-word vote round, and the protocol contract behind **optimistic
//!   replay**, where the vote travels as a one-word header on the fused
//!   value messages themselves (see [`ScheduleExecutor::post_optimistic`])
//!   and a disagreement rolls the trip back to a full inspection.
//! * [`ScheduleExecutor`] — the split-phase executor: **post** the fused
//!   per-peer value messages nonblocking, compute *interior* work while
//!   they fly, **complete** the receives and scatter, then run the
//!   *boundary*. Storage access is abstracted behind [`ScheduleWorld`],
//!   which both the interpreter's `ArrObj` world and `kali-array`'s
//!   `DistArrayN` world implement.
//! * [`SplitBox2`] / [`SplitRange1`] — the interior/boundary partitions
//!   of owned iteration boxes shared by the compiled `doall` forms.
//! * [`ExecPolicy`] — the execution-strategy datum (split-phase?
//!   optimistic replay?) shared by every consumer of this engine: the
//!   interpreter's run options and the compiled path's plan policy are
//!   the same type, so the strategy lattice cannot fork.
//!
//! Treating communication schedules as shared algebraic objects follows
//! the reusable-communication view of sparse/tensor runtime systems; in
//! this repository it means optimistic replay, split-phase cold
//! inspection, and corner-completing halos are each built once.

mod cache;
mod exec;
mod policy;
mod schedule;
mod split;
pub mod vote;

pub use cache::{ScheduleCache, SiteKey};
pub use exec::{PendingValues, PendingVote, ScheduleExecutor, ScheduleWorld, VoteOutcome, NO_VOTE};
pub use policy::ExecPolicy;
pub use schedule::{interior_positions, ArraySchedule, CommSchedule};
pub use split::{SplitBox2, SplitRange1};
