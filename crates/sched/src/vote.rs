//! Replay-consensus protocols.
//!
//! A replay decision must be *collective*: the request/reply protocol of a
//! schedule is team-wide, so every member must agree on the (single)
//! logical invocation being replayed. Two protocols implement the
//! agreement:
//!
//! * **pessimistic** ([`consensus`]): a dedicated flat one-word vote
//!   exchange *before* any value traffic. Safe and simple, but it costs a
//!   full message round of start-up latency on every warm trip — the
//!   largest un-hidden latency once the value exchange itself is fused
//!   and overlapped.
//! * **optimistic** ([`crate::ScheduleExecutor::post_optimistic`]): each
//!   member assumes agreement, posts its fused value messages
//!   immediately, and carries its vote as a one-word header on those
//!   messages (peers with no scheduled traffic get the bare header word).
//!   Every member sends to and receives from every other member, so all
//!   members observe the same vote multiset and reach the same verdict
//!   with **zero** extra rounds. On disagreement the received payloads
//!   are discarded and the trip *rolls back* to a full inspection — the
//!   value traffic was wasted, but correctness never depends on it.

use kali_machine::{collective, Proc, Team};

/// Pessimistic team-wide agreement on the cached `(site, team)` ordinal to
/// replay: returns `Some(seq)` only when *every* member holds a matching
/// schedule from the same fresh construction. A flat one-word vote
/// exchange — no tree depth, so it costs one latency, not log q of them;
/// members with no local hit vote -1, which can never win.
pub fn consensus(proc: &mut Proc, team: &Team, local_seq: Option<u64>) -> Option<u64> {
    let mine = local_seq.map_or(-1.0, |e| e as f64);
    if team.len() > 1 {
        let votes = collective::alltoallv(proc, team, vec![mine; team.len()]);
        if votes.iter().any(|&v| v != mine) {
            return None;
        }
    }
    (mine >= 0.0).then_some(mine as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kali_machine::{CostModel, Machine, MachineConfig};
    use std::time::Duration;

    fn cfg(p: usize) -> MachineConfig {
        MachineConfig::new(p)
            .with_cost(CostModel::unit())
            .with_watchdog(Duration::from_secs(10))
    }

    #[test]
    fn unanimous_votes_win() {
        let run = Machine::run(cfg(4), |proc| {
            let team = Team::all(proc.nprocs());
            consensus(proc, &team, Some(3))
        });
        assert!(run.results.iter().all(|r| *r == Some(3)));
    }

    #[test]
    fn any_dissent_loses_everywhere() {
        let run = Machine::run(cfg(4), |proc| {
            let team = Team::all(proc.nprocs());
            let local = (proc.rank() != 2).then_some(3u64);
            consensus(proc, &team, local)
        });
        assert!(run.results.iter().all(|r| r.is_none()));
    }

    #[test]
    fn singleton_team_decides_locally() {
        let run = Machine::run(cfg(1), |proc| {
            let team = Team::all(1);
            (
                consensus(proc, &team, Some(5)),
                consensus(proc, &team, None),
            )
        });
        assert_eq!(run.results[0], (Some(5), None));
    }
}
