//! The schedule cache: schedules stored under consumer-defined keys with
//! per-`(site, team)` fresh-construction ordinals.

use std::rc::Rc;

use crate::schedule::CommSchedule;

/// What a cache key must expose to the cache itself. The rest of the key
/// (iteration sets, scalars, structural array descriptions, distribution
/// generations, ...) is consumer-defined and only compared for equality.
pub trait SiteKey: PartialEq {
    /// Static site identifier (e.g. the parser-assigned `doall` site id).
    fn site(&self) -> usize;
    /// Machine ranks of the team the invocation ran on, in team order.
    fn team_ranks(&self) -> &[usize];
}

struct CacheEntry<K> {
    key: K,
    /// Fresh-construction ordinal *per (site, team)*. A fresh run for a
    /// given site and team is collective across exactly that team, so
    /// these counters advance in lockstep on every member (unlike any
    /// processor-global counter, which diverges when a processor belongs
    /// to intersecting teams — e.g. ADI row and column slices). The
    /// replay consensus compares ordinals to guarantee all members
    /// replay the same logical invocation.
    seq: u64,
    sched: Rc<CommSchedule>,
}

/// Cached schedules, shared across call frames: the key must carry every
/// frame-dependent input, so a hit is valid regardless of which call
/// produced the entry.
pub struct ScheduleCache<K: SiteKey> {
    entries: Vec<CacheEntry<K>>,
    /// Per-site entry cap; the lowest ordinal is evicted beyond it (a
    /// backstop — sites normally cycle through a handful of keys).
    max_per_site: usize,
}

impl<K: SiteKey> ScheduleCache<K> {
    pub fn new(max_per_site: usize) -> Self {
        assert!(max_per_site >= 1);
        ScheduleCache {
            entries: Vec::new(),
            max_per_site,
        }
    }

    /// Does this cache hold any entry for `(site, team)`? Stores are
    /// collective per `(site, team)`, so this predicate is SPMD-uniform
    /// across the team and gates the replay vote: until a site-team pair
    /// has an entry, every member skips the vote and inspects fresh.
    pub fn has_site_team(&self, site: usize, team_ranks: &[usize]) -> bool {
        self.entries
            .iter()
            .any(|e| e.key.site() == site && e.key.team_ranks() == team_ranks)
    }

    /// Most recent cached schedule matching `key`, with its ordinal.
    pub fn lookup(&self, key: &K) -> Option<(u64, Rc<CommSchedule>)> {
        self.entries
            .iter()
            .filter(|e| e.key == *key)
            .max_by_key(|e| e.seq)
            .map(|e| (e.seq, Rc::clone(&e.sched)))
    }

    /// Store a freshly constructed schedule; returns its `(site, team)`
    /// ordinal and the stored (shared) schedule, so a caller that still
    /// needs it — e.g. to complete the exchange it was built for — does
    /// not pay a lookup round trip. Eviction is scoped per
    /// `(site, team)` — like the ordinal numbering and the vote gate —
    /// and removes the *lowest* ordinal, so both the running maximum and
    /// [`ScheduleCache::has_site_team`] stay aligned across the team.
    /// (Scoping eviction by site alone would let a processor sitting in
    /// two intersecting teams evict another team's only entry while that
    /// team's other members keep theirs, splitting the gate and
    /// desynchronizing the collectives.)
    pub fn store(&mut self, key: K, sched: CommSchedule) -> (u64, Rc<CommSchedule>) {
        let seq = self
            .entries
            .iter()
            .filter(|e| e.key.site() == key.site() && e.key.team_ranks() == key.team_ranks())
            .map(|e| e.seq)
            .max()
            .unwrap_or(0)
            + 1;
        let site = key.site();
        let team: Vec<usize> = key.team_ranks().to_vec();
        let sched = Rc::new(sched);
        self.entries.push(CacheEntry {
            key,
            seq,
            sched: Rc::clone(&sched),
        });
        let in_site_team = |e: &CacheEntry<K>| e.key.site() == site && e.key.team_ranks() == team;
        let count = self.entries.iter().filter(|e| in_site_team(e)).count();
        if count > self.max_per_site {
            if let Some(pos) = self
                .entries
                .iter()
                .enumerate()
                .filter(|(_, e)| in_site_team(e))
                .min_by_key(|(_, e)| e.seq)
                .map(|(i, _)| i)
            {
                self.entries.remove(pos);
            }
        }
        (seq, sched)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(PartialEq)]
    struct Key {
        site: usize,
        team: Vec<usize>,
        tag: u64,
    }

    impl SiteKey for Key {
        fn site(&self) -> usize {
            self.site
        }
        fn team_ranks(&self) -> &[usize] {
            &self.team
        }
    }

    fn sched() -> CommSchedule {
        CommSchedule {
            arrays: vec![],
            write_hint: 0,
            boundary: vec![],
        }
    }

    fn key(site: usize, team: &[usize], tag: u64) -> Key {
        Key {
            site,
            team: team.to_vec(),
            tag,
        }
    }

    #[test]
    fn ordinals_advance_per_site_team() {
        let mut c = ScheduleCache::new(8);
        assert_eq!(c.store(key(1, &[0, 1], 0), sched()).0, 1);
        assert_eq!(c.store(key(1, &[0, 1], 1), sched()).0, 2);
        // A different team for the same site numbers independently.
        assert_eq!(c.store(key(1, &[0, 2], 0), sched()).0, 1);
        assert_eq!(c.store(key(2, &[0, 1], 0), sched()).0, 1);
    }

    #[test]
    fn lookup_returns_the_most_recent_match() {
        let mut c = ScheduleCache::new(8);
        c.store(key(1, &[0, 1], 7), sched());
        c.store(key(1, &[0, 1], 8), sched());
        c.store(key(1, &[0, 1], 7), sched());
        let (seq, _) = c.lookup(&key(1, &[0, 1], 7)).unwrap();
        assert_eq!(seq, 3);
        assert!(c.lookup(&key(1, &[0, 1], 9)).is_none());
    }

    #[test]
    fn site_team_gate_is_exact() {
        let mut c = ScheduleCache::new(8);
        c.store(key(1, &[0, 1], 0), sched());
        assert!(c.has_site_team(1, &[0, 1]));
        assert!(!c.has_site_team(1, &[0, 2]));
        assert!(!c.has_site_team(2, &[0, 1]));
    }

    #[test]
    fn eviction_drops_the_lowest_ordinal_and_keeps_numbering() {
        let mut c = ScheduleCache::new(2);
        c.store(key(1, &[0], 0), sched());
        c.store(key(1, &[0], 1), sched());
        c.store(key(1, &[0], 2), sched()); // evicts ordinal 1
        assert!(c.lookup(&key(1, &[0], 0)).is_none());
        // Numbering continues from the maximum, not the entry count.
        assert_eq!(c.store(key(1, &[0], 3), sched()).0, 4);
    }

    #[test]
    fn eviction_is_scoped_per_site_team() {
        // One site under two intersecting teams: filling one team's quota
        // must never evict the other team's entries — a processor in both
        // teams would otherwise drop a (site, team) pair its peers keep,
        // splitting the SPMD-uniform vote gate.
        let mut c = ScheduleCache::new(2);
        c.store(key(1, &[0, 2], 0), sched());
        for tag in 0..5 {
            c.store(key(1, &[0, 1], tag), sched());
        }
        assert!(c.has_site_team(1, &[0, 2]));
        assert!(c.lookup(&key(1, &[0, 2], 0)).is_some());
        // The overfilled team evicted only its own lowest ordinals.
        assert!(c.lookup(&key(1, &[0, 1], 0)).is_none());
        assert!(c.lookup(&key(1, &[0, 1], 4)).is_some());
    }
}
