//! The schedule cache: schedules stored under consumer-defined keys with
//! per-`(site, team)` fresh-construction ordinals, indexed by site so
//! lookups never scan unrelated entries, and bounded by a global entry
//! budget with LRU victim selection.

use std::cell::Cell;
use std::collections::HashMap;
use std::rc::Rc;

use crate::schedule::CommSchedule;

/// What a cache key must expose to the cache itself. The rest of the key
/// (iteration sets, scalars, structural array descriptions, distribution
/// generations, ...) is consumer-defined and only compared for equality.
pub trait SiteKey: PartialEq {
    /// Static site identifier (e.g. the parser-assigned `doall` site id).
    fn site(&self) -> usize;
    /// Machine ranks of the team the invocation ran on, in team order.
    fn team_ranks(&self) -> &[usize];
}

struct CacheEntry<K> {
    key: K,
    /// Fresh-construction ordinal *per (site, team)*. A fresh run for a
    /// given site and team is collective across exactly that team, so
    /// these counters advance in lockstep on every member (unlike any
    /// processor-global counter, which diverges when a processor belongs
    /// to intersecting teams — e.g. ADI row and column slices). The
    /// replay consensus compares ordinals to guarantee all members
    /// replay the same logical invocation.
    seq: u64,
    sched: Rc<CommSchedule>,
    /// Recency stamp for LRU victim selection under the global budget.
    /// `Cell` because a lookup hit must refresh it through `&self`.
    last_used: Cell<u64>,
}

/// All entries for one `(site, team)` pair. The bucket itself is *never*
/// removed once created: an empty bucket is a tombstone that keeps
/// [`ScheduleCache::has_site_team`] answering `true` and keeps `next_seq`
/// advancing from where it left off. Both matter for SPMD correctness:
/// the vote gate must stay monotone (stores are collective per
/// `(site, team)`, evictions under memory pressure need not be — a member
/// whose LRU order diverged must still *vote* so the consensus can fail
/// over to a recoverable rollback instead of desynchronizing the
/// collective), and ordinals must never restart from 1 on one member
/// while another still counts from its surviving entries.
struct Bucket<K> {
    team: Vec<usize>,
    /// Last issued fresh-construction ordinal; survives eviction of every
    /// entry in the bucket.
    last_seq: u64,
    entries: Vec<CacheEntry<K>>,
}

/// Cached schedules, shared across call frames: the key must carry every
/// frame-dependent input, so a hit is valid regardless of which call
/// produced the entry.
///
/// Entries are indexed by site (and within a site by team), so
/// [`ScheduleCache::lookup`] / [`ScheduleCache::store`] /
/// [`ScheduleCache::has_site_team`] touch only the handful of entries of
/// one `(site, team)` pair — never the whole cache. Capacity is bounded
/// twice over: a per-`(site, team)` cap evicting the lowest ordinal (a
/// backstop against one site cycling through many keys), and an optional
/// global entry budget evicting the least-recently-used entry anywhere
/// (the multi-tenant bound — shape-diverse request streams stop growing
/// the cache without limit).
pub struct ScheduleCache<K: SiteKey> {
    sites: HashMap<usize, Vec<Bucket<K>>>,
    /// Per-`(site, team)` entry cap; the lowest ordinal is evicted beyond
    /// it (sites normally cycle through a handful of keys).
    max_per_site: usize,
    /// Global entry budget; `usize::MAX` = unbounded.
    max_entries: usize,
    /// Total entries across all buckets (tombstones count 0).
    len: usize,
    /// Monotone recency clock; every insert and every lookup hit takes a
    /// fresh tick, so LRU victim selection never sees a tie.
    tick: Cell<u64>,
    /// Evictions since the last [`ScheduleCache::take_evictions`] drain.
    evictions: u64,
}

impl<K: SiteKey> ScheduleCache<K> {
    /// Unbounded-total cache with a per-`(site, team)` cap.
    pub fn new(max_per_site: usize) -> Self {
        Self::with_budget(max_per_site, usize::MAX)
    }

    /// Cache bounded both per `(site, team)` and in total entries.
    pub fn with_budget(max_per_site: usize, max_entries: usize) -> Self {
        assert!(max_per_site >= 1);
        assert!(max_entries >= 1);
        ScheduleCache {
            sites: HashMap::new(),
            max_per_site,
            max_entries,
            len: 0,
            tick: Cell::new(0),
            evictions: 0,
        }
    }

    /// Entries currently held (excluding tombstoned buckets).
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The global entry budget, if one is set.
    pub fn budget(&self) -> Option<usize> {
        (self.max_entries != usize::MAX).then_some(self.max_entries)
    }

    /// Re-cap the global budget, evicting LRU entries down to it.
    pub fn set_budget(&mut self, max_entries: usize) {
        assert!(max_entries >= 1);
        self.max_entries = max_entries;
        while self.len > self.max_entries {
            self.evict_lru();
        }
    }

    /// Evictions performed since the last drain (per-site-cap and
    /// global-budget evictions both count).
    pub fn take_evictions(&mut self) -> u64 {
        std::mem::take(&mut self.evictions)
    }

    fn next_tick(&self) -> u64 {
        let t = self.tick.get() + 1;
        self.tick.set(t);
        t
    }

    fn bucket(&self, site: usize, team_ranks: &[usize]) -> Option<&Bucket<K>> {
        self.sites.get(&site)?.iter().find(|b| b.team == team_ranks)
    }

    /// Has a schedule *ever* been stored for `(site, team)`? Stores are
    /// collective per `(site, team)`, so this predicate is SPMD-uniform
    /// across the team and gates the replay vote: until a site-team pair
    /// has stored, every member skips the vote and inspects fresh. It is
    /// deliberately monotone — entries evicted under the global budget
    /// leave a tombstoned bucket behind, so a member whose LRU order
    /// diverged still votes (and loses, recoverably) rather than sitting
    /// out a collective its peers entered.
    pub fn has_site_team(&self, site: usize, team_ranks: &[usize]) -> bool {
        self.bucket(site, team_ranks).is_some()
    }

    /// Most recent cached schedule matching `key`, with its ordinal.
    /// Refreshes the entry's LRU stamp.
    pub fn lookup(&self, key: &K) -> Option<(u64, Rc<CommSchedule>)> {
        let hit = self
            .bucket(key.site(), key.team_ranks())?
            .entries
            .iter()
            .filter(|e| e.key == *key)
            .max_by_key(|e| e.seq)?;
        hit.last_used.set(self.next_tick());
        Some((hit.seq, Rc::clone(&hit.sched)))
    }

    /// Store a freshly constructed schedule; returns its `(site, team)`
    /// ordinal and the stored (shared) schedule, so a caller that still
    /// needs it — e.g. to complete the exchange it was built for — does
    /// not pay a lookup round trip.
    ///
    /// The per-`(site, team)` cap evicts the *lowest* ordinal within the
    /// same bucket — like the ordinal numbering and the vote gate, its
    /// scope is exactly the collective's. (Scoping it by site alone would
    /// let a processor sitting in two intersecting teams evict another
    /// team's only entry while that team's other members keep theirs,
    /// splitting the gate and desynchronizing the collectives.) The
    /// global budget then evicts the least-recently-used entry anywhere,
    /// leaving its bucket as a tombstone so the gate and ordinals survive.
    pub fn store(&mut self, key: K, sched: CommSchedule) -> (u64, Rc<CommSchedule>) {
        let site = key.site();
        let tick = self.next_tick();
        let sched = Rc::new(sched);
        let buckets = self.sites.entry(site).or_default();
        let bucket = match buckets.iter_mut().find(|b| b.team == key.team_ranks()) {
            Some(b) => b,
            None => {
                buckets.push(Bucket {
                    team: key.team_ranks().to_vec(),
                    last_seq: 0,
                    entries: Vec::new(),
                });
                buckets.last_mut().unwrap()
            }
        };
        bucket.last_seq += 1;
        let seq = bucket.last_seq;
        bucket.entries.push(CacheEntry {
            key,
            seq,
            sched: Rc::clone(&sched),
            last_used: Cell::new(tick),
        });
        self.len += 1;
        if bucket.entries.len() > self.max_per_site {
            if let Some(pos) = bucket
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.seq)
                .map(|(i, _)| i)
            {
                bucket.entries.remove(pos);
                self.len -= 1;
                self.evictions += 1;
            }
        }
        while self.len > self.max_entries {
            self.evict_lru();
        }
        (seq, sched)
    }

    /// Pre-seed a schedule derived *without* running the inspector — the
    /// consumer of a compile-time communication plan (a static analyzer's
    /// `StaticCommPlan`) stores its concretized schedule here so the cold
    /// trip replays instead of inspecting.
    ///
    /// Seeding is refused (returns `None`) once the `(site, team)` pair
    /// has *any* history — even a tombstoned bucket. Two invariants
    /// depend on that: a seed must never clobber or renumber
    /// inspector-derived entries, and a successful seed always gets
    /// ordinal 1, so members that seed the same plan independently (the
    /// seed is a pure function of program text and distributions, hence
    /// SPMD-uniform) agree on the ordinal and the replay consensus
    /// passes without any extra communication.
    pub fn seed(&mut self, key: K, sched: CommSchedule) -> Option<(u64, Rc<CommSchedule>)> {
        if self.has_site_team(key.site(), key.team_ranks()) {
            return None;
        }
        Some(self.store(key, sched))
    }

    /// Remove the least-recently-used entry anywhere in the cache. Ticks
    /// are unique, so the victim is deterministic regardless of map
    /// iteration order. The victim's bucket stays behind as a tombstone.
    fn evict_lru(&mut self) {
        let mut victim: Option<(usize, usize, usize, u64)> = None;
        for (&site, buckets) in &self.sites {
            for (bi, b) in buckets.iter().enumerate() {
                for (ei, e) in b.entries.iter().enumerate() {
                    let stamp = e.last_used.get();
                    if victim.is_none_or(|(.., best)| stamp < best) {
                        victim = Some((site, bi, ei, stamp));
                    }
                }
            }
        }
        if let Some((site, bi, ei, _)) = victim {
            self.sites.get_mut(&site).unwrap()[bi].entries.remove(ei);
            self.len -= 1;
            self.evictions += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(PartialEq)]
    struct Key {
        site: usize,
        team: Vec<usize>,
        tag: u64,
    }

    impl SiteKey for Key {
        fn site(&self) -> usize {
            self.site
        }
        fn team_ranks(&self) -> &[usize] {
            &self.team
        }
    }

    fn sched() -> CommSchedule {
        CommSchedule {
            arrays: vec![],
            write_hint: 0,
            boundary: vec![],
        }
    }

    fn key(site: usize, team: &[usize], tag: u64) -> Key {
        Key {
            site,
            team: team.to_vec(),
            tag,
        }
    }

    #[test]
    fn ordinals_advance_per_site_team() {
        let mut c = ScheduleCache::new(8);
        assert_eq!(c.store(key(1, &[0, 1], 0), sched()).0, 1);
        assert_eq!(c.store(key(1, &[0, 1], 1), sched()).0, 2);
        // A different team for the same site numbers independently.
        assert_eq!(c.store(key(1, &[0, 2], 0), sched()).0, 1);
        assert_eq!(c.store(key(2, &[0, 1], 0), sched()).0, 1);
    }

    #[test]
    fn lookup_returns_the_most_recent_match() {
        let mut c = ScheduleCache::new(8);
        c.store(key(1, &[0, 1], 7), sched());
        c.store(key(1, &[0, 1], 8), sched());
        c.store(key(1, &[0, 1], 7), sched());
        let (seq, _) = c.lookup(&key(1, &[0, 1], 7)).unwrap();
        assert_eq!(seq, 3);
        assert!(c.lookup(&key(1, &[0, 1], 9)).is_none());
    }

    #[test]
    fn site_team_gate_is_exact() {
        let mut c = ScheduleCache::new(8);
        c.store(key(1, &[0, 1], 0), sched());
        assert!(c.has_site_team(1, &[0, 1]));
        assert!(!c.has_site_team(1, &[0, 2]));
        assert!(!c.has_site_team(2, &[0, 1]));
    }

    #[test]
    fn eviction_drops_the_lowest_ordinal_and_keeps_numbering() {
        let mut c = ScheduleCache::new(2);
        c.store(key(1, &[0], 0), sched());
        c.store(key(1, &[0], 1), sched());
        c.store(key(1, &[0], 2), sched()); // evicts ordinal 1
        assert!(c.lookup(&key(1, &[0], 0)).is_none());
        // Numbering continues from the maximum, not the entry count.
        assert_eq!(c.store(key(1, &[0], 3), sched()).0, 4);
        assert_eq!(c.take_evictions(), 2);
        assert_eq!(c.take_evictions(), 0);
    }

    #[test]
    fn eviction_is_scoped_per_site_team() {
        // One site under two intersecting teams: filling one team's quota
        // must never evict the other team's entries — a processor in both
        // teams would otherwise drop a (site, team) pair its peers keep,
        // splitting the SPMD-uniform vote gate.
        let mut c = ScheduleCache::new(2);
        c.store(key(1, &[0, 2], 0), sched());
        for tag in 0..5 {
            c.store(key(1, &[0, 1], tag), sched());
        }
        assert!(c.has_site_team(1, &[0, 2]));
        assert!(c.lookup(&key(1, &[0, 2], 0)).is_some());
        // The overfilled team evicted only its own lowest ordinals.
        assert!(c.lookup(&key(1, &[0, 1], 0)).is_none());
        assert!(c.lookup(&key(1, &[0, 1], 4)).is_some());
    }

    #[test]
    fn global_budget_bounds_total_entries_with_lru_victims() {
        let mut c = ScheduleCache::with_budget(8, 3);
        c.store(key(1, &[0], 0), sched());
        c.store(key(2, &[0], 0), sched());
        c.store(key(3, &[0], 0), sched());
        assert_eq!(c.len(), 3);
        // Touch site 1 so site 2 becomes the least recently used.
        assert!(c.lookup(&key(1, &[0], 0)).is_some());
        c.store(key(4, &[0], 0), sched());
        assert_eq!(c.len(), 3);
        assert!(c.lookup(&key(2, &[0], 0)).is_none());
        assert!(c.lookup(&key(1, &[0], 0)).is_some());
        assert!(c.lookup(&key(4, &[0], 0)).is_some());
        assert_eq!(c.take_evictions(), 1);
    }

    #[test]
    fn budget_eviction_keeps_the_gate_up_and_ordinals_monotone() {
        // Fully evicting a (site, team) pair under the global budget must
        // leave its vote gate up (tombstoned bucket) and keep numbering
        // from the last issued ordinal — peers whose LRU order diverged
        // rely on both to stay in lockstep on the consensus vote.
        let mut c = ScheduleCache::with_budget(8, 1);
        c.store(key(1, &[0, 1], 0), sched());
        c.store(key(2, &[0, 1], 0), sched()); // evicts site 1's only entry
        assert!(c.lookup(&key(1, &[0, 1], 0)).is_none());
        assert!(c.has_site_team(1, &[0, 1]));
        assert_eq!(c.store(key(1, &[0, 1], 0), sched()).0, 2);
    }

    #[test]
    fn seed_populates_an_empty_site_team_with_ordinal_one() {
        let mut c = ScheduleCache::new(8);
        let (seq, _) = c.seed(key(5, &[0, 1], 0), sched()).unwrap();
        assert_eq!(seq, 1);
        assert!(c.has_site_team(5, &[0, 1]));
        let (seq, _) = c.lookup(&key(5, &[0, 1], 0)).unwrap();
        assert_eq!(seq, 1);
        // A later fresh construction numbers after the seed.
        assert_eq!(c.store(key(5, &[0, 1], 1), sched()).0, 2);
    }

    #[test]
    fn seed_refuses_any_site_team_with_history() {
        let mut c = ScheduleCache::with_budget(8, 1);
        c.store(key(1, &[0, 1], 0), sched());
        // Live entry: refused.
        assert!(c.seed(key(1, &[0, 1], 9), sched()).is_none());
        // Same site, different team: separate gate, seeds fine.
        assert!(c.seed(key(1, &[2, 3], 0), sched()).is_some());
        // Evicting every entry leaves a tombstone; still refused —
        // ordinal 1 could never be re-issued there.
        c.store(key(2, &[0, 1], 0), sched());
        assert!(c.lookup(&key(1, &[0, 1], 0)).is_none());
        assert!(c.seed(key(1, &[0, 1], 0), sched()).is_none());
    }

    #[test]
    fn set_budget_evicts_down_to_the_new_cap() {
        let mut c = ScheduleCache::new(8);
        for site in 0..6 {
            c.store(key(site, &[0], 0), sched());
        }
        assert_eq!(c.len(), 6);
        assert_eq!(c.budget(), None);
        c.set_budget(2);
        assert_eq!(c.len(), 2);
        assert_eq!(c.budget(), Some(2));
        assert_eq!(c.take_evictions(), 4);
        // The most recently stored entries survive.
        assert!(c.lookup(&key(4, &[0], 0)).is_some());
        assert!(c.lookup(&key(5, &[0], 0)).is_some());
    }
}
