//! The execution policy every consumer of the scheduling engine shares.
//!
//! Both drivers of this engine — the KF1 interpreter (`kali-lang`) and
//! the compiled stencil-plan path (`kali-runtime`) — choose between the
//! same independent strategy axes. [`ExecPolicy`] is that choice as
//! one piece of shared data, defined here next to the executor it
//! configures so neither consumer can grow a private variant drifting
//! out of sync with the other.

/// How a communicating `doall` executes. The *answer* never depends on
/// the policy — differential suites pin every combination bitwise —
/// only the virtual timeline and the schedule-construction work do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExecPolicy {
    /// Post the exchanged values nonblocking and run the
    /// communication-free interior iterations while they are in transit
    /// (the four-phase post / interior / complete / boundary engine).
    /// `false` exchanges synchronously and runs the iterations in
    /// natural order.
    pub split: bool,
    /// Replay warm exchanges from the cached schedule, with the
    /// replay-consensus vote piggybacked as a one-word header on the
    /// fused value messages (rollback on disagreement). `false` runs the
    /// pre-caching baseline: rebuild (or dedicated vote round) on every
    /// trip.
    pub optimistic: bool,
    /// Hand stencil bodies whole contiguous owned rows (`&[T]` in,
    /// `&mut [T]` out) so the interior compiles to autovectorizable tight
    /// loops, instead of calling the body once per `(i, j)` point.
    /// Solvers with a row kernel dispatch on this flag; the per-point
    /// form (`false`) is the differential baseline and both are pinned
    /// bitwise-identical.
    pub rows: bool,
}

impl Default for ExecPolicy {
    /// Split-phase with optimistic replay over row-form interiors: the
    /// latency-hiding, schedule-replaying, vectorizing fast path.
    fn default() -> Self {
        ExecPolicy {
            split: true,
            optimistic: true,
            rows: true,
        }
    }
}

impl ExecPolicy {
    /// Fully synchronous, rebuild-per-exchange: the differential baseline.
    /// (Row-form interiors stay on — the interior iteration shape is
    /// orthogonal to the exchange strategy.)
    pub fn blocking() -> Self {
        ExecPolicy {
            rows: true,
            split: false,
            optimistic: false,
        }
    }

    /// Split-phase overlap without optimistic replay.
    pub fn pessimistic() -> Self {
        ExecPolicy {
            rows: true,
            split: true,
            optimistic: false,
        }
    }

    /// The same exchange strategy with per-point interior bodies — the
    /// differential (and perf) baseline for the row form.
    pub fn point_form(self) -> Self {
        ExecPolicy {
            rows: false,
            ..self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_cover_the_strategy_lattice() {
        assert_eq!(
            ExecPolicy::default(),
            ExecPolicy {
                split: true,
                optimistic: true,
                rows: true,
            }
        );
        assert_eq!(
            ExecPolicy::blocking(),
            ExecPolicy {
                split: false,
                optimistic: false,
                rows: true,
            }
        );
        assert_eq!(
            ExecPolicy::pessimistic(),
            ExecPolicy {
                split: true,
                optimistic: false,
                rows: true,
            }
        );
        assert_eq!(
            ExecPolicy::default().point_form(),
            ExecPolicy {
                split: true,
                optimistic: true,
                rows: false,
            }
        );
    }
}
