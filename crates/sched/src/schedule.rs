//! Communication schedules: the inspector's distilled output, as shared,
//! consumer-neutral data.

/// The communication plan for one site invocation: for each participating
/// array, the flat indices this processor must request from each team
/// member and the flat indices each member will request of it. With both
/// directions recorded, a later invocation can run the value exchange
/// directly — no inspector pass, no request round — and both sides agree
/// on which peer pairs exchange no message at all.
pub struct CommSchedule {
    pub arrays: Vec<ArraySchedule>,
    /// Buffered-write count observed when the schedule was built;
    /// pre-sizes a copy-out buffer on replay. Consumers without
    /// copy-in/copy-out semantics leave it 0.
    pub write_hint: usize,
    /// Positions (into the invocation's local iteration set, ascending) of
    /// the *boundary* iterations — those that read at least one remote
    /// element. Everything else is *interior* and can execute while the
    /// replayed exchange is still in flight. Consumers whose iteration
    /// split lives elsewhere (e.g. the ghost halo) leave it empty.
    pub boundary: Vec<usize>,
}

/// One array's slice of a [`CommSchedule`].
pub struct ArraySchedule {
    /// Consumer-meaning name of the array. The interpreter resolves it
    /// against the current frame on replay (so a schedule built in one
    /// call frame replays in a structurally identical later frame); the
    /// halo uses a fixed label. The cache therefore holds no storage
    /// references and cannot leak dead arrays.
    pub name: String,
    /// Per team member: flat indices this processor requests.
    pub my_reqs: Vec<Vec<u64>>,
    /// Per team member: flat indices they request of us (the reply layout
    /// of the value round).
    pub incoming: Vec<Vec<u64>>,
    /// Flat index of the array region's origin (fixed view coordinates at
    /// their values, ranged dimensions at their lower bounds) when the
    /// schedule was built. A consumer whose cache key identifies regions
    /// only up to translation (e.g. the interpreter's owner-normalized
    /// line views) replays by shifting every flat index by the delta
    /// between the current region's origin and this one. Consumers whose
    /// keys pin absolute geometry leave it 0.
    pub origin: u64,
}

impl CommSchedule {
    /// Total words this processor will receive on a replay (the
    /// `exchange_words` accounting unit).
    pub fn words_expected(&self) -> usize {
        self.arrays
            .iter()
            .map(|a| a.my_reqs.iter().map(Vec::len).sum::<usize>())
            .sum()
    }

    /// Does this processor expect at least one value word from team
    /// member `d` on a replay?
    pub fn expects_from(&self, d: usize) -> bool {
        self.arrays.iter().any(|a| !a.my_reqs[d].is_empty())
    }
}

/// Complement of a sorted `boundary` position list within `0..n`: the
/// interior positions, ascending.
pub fn interior_positions(boundary: &[usize], n: usize) -> Vec<usize> {
    let mut bi = 0usize;
    let mut interior = Vec::with_capacity(n - boundary.len());
    for pos in 0..n {
        if bi < boundary.len() && boundary[bi] == pos {
            bi += 1;
        } else {
            interior.push(pos);
        }
    }
    interior
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interior_is_the_complement_of_boundary() {
        assert_eq!(interior_positions(&[1, 3], 5), vec![0, 2, 4]);
        assert_eq!(interior_positions(&[], 3), vec![0, 1, 2]);
        assert_eq!(interior_positions(&[0, 1, 2], 3), Vec::<usize>::new());
    }

    #[test]
    fn words_and_peer_expectations() {
        let s = CommSchedule {
            arrays: vec![ArraySchedule {
                name: "x".into(),
                my_reqs: vec![vec![], vec![3, 4], vec![7]],
                incoming: vec![vec![], vec![1], vec![]],
                origin: 0,
            }],
            write_hint: 0,
            boundary: vec![],
        };
        assert_eq!(s.words_expected(), 3);
        assert!(!s.expects_from(0));
        assert!(s.expects_from(1));
        assert!(s.expects_from(2));
    }
}
