//! The split-phase schedule executor.
//!
//! Replaying a [`CommSchedule`] is a storage-neutral protocol: serve every
//! peer's cached requests from local storage, move the fused per-peer
//! value messages, scatter the received values into place. The executor
//! implements that protocol once — blocking and split-phase, pessimistic
//! and optimistic — against the [`ScheduleWorld`] storage abstraction, so
//! the interpreter's `ArrObj` arrays and `kali-array`'s `DistArrayN`
//! arrays replay through identical code.

use kali_machine::{collective, Elem, PendingRecv, Proc, Tag, Team, Wire};

use crate::schedule::CommSchedule;

/// How the executor touches a consumer's storage. `array` indexes into
/// [`CommSchedule::arrays`]; `flat` is the consumer's flat element index
/// (global row-major for both current consumers).
///
/// The executor's serve/scatter hot loops call the *batched* accessors
/// ([`ScheduleWorld::load_into`] / [`ScheduleWorld::store_from`]), which
/// default to per-element calls; consumers whose per-element access pays
/// a fixed cost (a `RefCell` borrow, an N-dimensional index decode)
/// override them to pay it once per request vector instead.
pub trait ScheduleWorld<T> {
    /// Read the current local value of element `flat` of schedule array
    /// `array` (serving a peer's cached request).
    fn load(&self, array: usize, flat: u64) -> T;
    /// Store a freshly received value into element `flat` of schedule
    /// array `array`.
    fn store(&mut self, array: usize, flat: u64, value: T);

    /// Append the values of `flats` (one request vector of array `array`)
    /// to `out`, in order. Override to hoist per-element overhead.
    fn load_into(&self, array: usize, flats: &[u64], out: &mut Vec<T>)
    where
        T: Copy,
    {
        out.extend(flats.iter().map(|&f| self.load(array, f)));
    }

    /// Store `values` into the elements named by `flats`, pairwise
    /// (`values.len() == flats.len()`). Override to hoist per-element
    /// overhead.
    fn store_from(&mut self, array: usize, flats: &[u64], values: &[T])
    where
        T: Copy,
    {
        debug_assert_eq!(flats.len(), values.len());
        for (&f, &v) in flats.iter().zip(values) {
            self.store(array, f, v);
        }
    }
}

/// An in-flight pessimistic value exchange created by
/// [`ScheduleExecutor::post`]; complete it with
/// [`ScheduleExecutor::complete`].
#[must_use = "a posted exchange must be completed"]
pub struct PendingValues<T: Wire> {
    recvs: Vec<(usize, PendingRecv<Vec<T>>)>,
}

impl<T: Wire> PendingValues<T> {
    /// A pending set with no posted messages — for callers that sit out
    /// an exchange entirely (e.g. processors outside the owning grid) but
    /// still thread the completion call through shared code.
    pub fn none() -> Self {
        PendingValues { recvs: Vec::new() }
    }

    /// Number of value messages still outstanding.
    pub fn len(&self) -> usize {
        self.recvs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.recvs.is_empty()
    }
}

/// The header word a member with no replayable schedule sends: a vote
/// that can never win.
pub const NO_VOTE: i64 = -1;

/// An in-flight optimistic exchange: fused value messages carrying the
/// replay vote as a *typed* one-word header (`(i64, Vec<T>)`), one
/// message per ordered peer pair. The header rides in its own channel of
/// the tuple rather than inside an element slot, so the consensus word
/// is element-independent: it costs one wire word whatever `T` is, and
/// the payload half packs by element width ([`Elem::slice_words`]).
#[must_use = "a posted optimistic exchange must be completed"]
pub struct PendingVote<T: Elem> {
    recvs: Vec<(usize, PendingRecv<(i64, Vec<T>)>)>,
    vote: i64,
    nmembers: usize,
}

impl<T: Elem> PendingVote<T> {
    /// Number of header-carrying messages still outstanding.
    pub fn len(&self) -> usize {
        self.recvs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.recvs.is_empty()
    }
}

/// What an optimistic exchange decided.
pub struct VoteOutcome<T> {
    /// `Some(seq)` when every member voted the same non-negative ordinal:
    /// replay it. `None`: roll back to a full inspection; the payloads
    /// must be discarded.
    pub agreed: Option<u64>,
    /// Per team member, the received value payload (own slot and
    /// header-only messages are empty).
    pub payloads: Vec<Vec<T>>,
}

/// The executor. Holds only the tags its nonblocking messages travel
/// under; consumers pick tags in their own namespaces so unrelated
/// protocols can never match each other's messages.
pub struct ScheduleExecutor {
    value_tag: Tag,
}

impl ScheduleExecutor {
    pub const fn new(value_tag: Tag) -> Self {
        ScheduleExecutor { value_tag }
    }

    /// Serve every peer's cached requests from local storage: one reply
    /// vector per team member, concatenated over the schedule's arrays
    /// (the scatter side walks the same order).
    fn serve<T: Copy, W: ScheduleWorld<T>>(
        proc: &mut Proc,
        q: usize,
        sched: &CommSchedule,
        world: &W,
    ) -> Vec<Vec<T>> {
        let mut replies: Vec<Vec<T>> = vec![Vec::new(); q];
        let mut served = 0usize;
        for (k, a) in sched.arrays.iter().enumerate() {
            for (d, idxs) in a.incoming.iter().enumerate() {
                world.load_into(k, idxs, &mut replies[d]);
                served += idxs.len();
            }
        }
        proc.memop(served as f64);
        replies
    }

    /// Scatter received value payloads into storage, walking arrays-major
    /// with one cursor per peer — the exact order [`Self::serve`] packed.
    /// Records the delivered *packed* words as executor exchange traffic:
    /// each peer's payload is one contiguous message, so it is charged at
    /// [`Elem::slice_words`] — word-per-element for `f64` (bit-identical
    /// to the historical element-count accounting), two-per-word for
    /// `f32`.
    fn scatter<T: Elem, W: ScheduleWorld<T>>(
        proc: &mut Proc,
        sched: &CommSchedule,
        world: &mut W,
        values: &[Vec<T>],
    ) {
        let mut cursor = vec![0usize; values.len()];
        for (k, a) in sched.arrays.iter().enumerate() {
            for (d, idxs) in a.my_reqs.iter().enumerate() {
                world.store_from(k, idxs, &values[d][cursor[d]..cursor[d] + idxs.len()]);
                cursor[d] += idxs.len();
            }
        }
        let recvd: usize = values.iter().map(|v| T::slice_words(v.len())).sum();
        proc.note_exchange_words(recvd as u64);
    }

    /// Blocking fused replay: serve, move the fused per-peer value
    /// messages with blocking sends/receives, scatter. Like the
    /// split-phase path, peer pairs with no scheduled traffic in a
    /// direction exchange no message at all — both sides hold the
    /// schedule, so they agree. The baseline the split-phase paths are
    /// differentially tested against: same messages, no overlap.
    pub fn exchange_blocking<T: Elem, W: ScheduleWorld<T>>(
        &self,
        proc: &mut Proc,
        team: &Team,
        sched: &CommSchedule,
        world: &mut W,
    ) {
        let q = team.len();
        let me = team
            .index_of(proc.rank())
            .expect("exchanging processor is a team member");
        let replies = Self::serve(proc, q, sched, world);
        for (d, payload) in replies.into_iter().enumerate() {
            if d != me && !payload.is_empty() {
                proc.send(team.rank(d), self.value_tag, payload);
            }
        }
        let mut values: Vec<Vec<T>> = Vec::with_capacity(q);
        values.resize_with(q, Vec::new);
        for d in 0..q {
            if d != me && sched.expects_from(d) {
                values[d] = proc.recv(team.rank(d), self.value_tag);
            }
        }
        Self::scatter(proc, sched, world, &values);
    }

    /// Split-phase post: serve and issue the fused per-peer value
    /// messages nonblocking and post the matching receives, then return
    /// so the caller can run interior work while the messages are in
    /// transit. Peer pairs with no traffic in a direction exchange no
    /// message at all (both sides hold the schedule, so they agree).
    pub fn post<T: Elem, W: ScheduleWorld<T>>(
        &self,
        proc: &mut Proc,
        team: &Team,
        sched: &CommSchedule,
        world: &W,
    ) -> PendingValues<T> {
        let q = team.len();
        let me = team
            .index_of(proc.rank())
            .expect("posting processor is a team member");
        let replies = Self::serve(proc, q, sched, world);
        for (d, payload) in replies.into_iter().enumerate() {
            if d != me && !payload.is_empty() {
                let _ = proc.isend(team.rank(d), self.value_tag, payload);
            }
        }
        let recvs = (0..q)
            .filter(|&d| d != me && sched.expects_from(d))
            .map(|d| (d, proc.irecv(team.rank(d), self.value_tag)))
            .collect();
        PendingValues { recvs }
    }

    /// Split-phase completion: wait for the posted receives and scatter
    /// the remote values into place — only now is idle charged, and only
    /// for the transit the caller's interleaved work did not cover.
    pub fn complete<T: Elem, W: ScheduleWorld<T>>(
        &self,
        proc: &mut Proc,
        team: &Team,
        sched: &CommSchedule,
        world: &mut W,
        pending: PendingValues<T>,
    ) {
        let mut values: Vec<Vec<T>> = Vec::with_capacity(team.len());
        values.resize_with(team.len(), Vec::new);
        for (d, h) in pending.recvs {
            values[d] = proc.wait(h);
        }
        Self::scatter(proc, sched, world, &values);
    }

    /// Optimistic post: piggyback the replay vote on the value messages.
    ///
    /// Every member sends one message to every other member —
    /// `(vote, [])` when it holds no replayable schedule (or the pair has
    /// no scheduled traffic), `(vote, values)` otherwise — and posts one
    /// receive per peer. All members therefore observe the full vote
    /// multiset when they complete, deciding hit-or-rollback identically
    /// with zero dedicated vote rounds: the one-word round-trip the
    /// pessimistic protocol serializes before every warm trip disappears
    /// into the exchange itself. (Consumers with analytically derivable
    /// team participation can shrink the vote set further — see
    /// `kali-array`'s active-team gating — but the executor itself sends
    /// to the team it is given.)
    pub fn post_optimistic<T: Elem, W: ScheduleWorld<T>>(
        &self,
        proc: &mut Proc,
        team: &Team,
        vote: i64,
        hit: Option<(&CommSchedule, &W)>,
    ) -> PendingVote<T> {
        let q = team.len();
        let me = team
            .index_of(proc.rank())
            .expect("posting processor is a team member");
        let mut replies: Vec<Vec<T>> = match hit {
            Some((sched, world)) => Self::serve(proc, q, sched, world),
            None => vec![Vec::new(); q],
        };
        for (d, values) in replies.iter_mut().enumerate() {
            if d == me {
                continue;
            }
            let _ = proc.isend(team.rank(d), self.value_tag, (vote, std::mem::take(values)));
        }
        let recvs = (0..q)
            .filter(|&d| d != me)
            .map(|d| (d, proc.irecv(team.rank(d), self.value_tag)))
            .collect();
        PendingVote {
            recvs,
            vote,
            nmembers: q,
        }
    }

    /// Optimistic completion: wait for every peer's message and compare
    /// the typed headers. Returns the team's verdict plus the value
    /// payloads — which the caller scatters on agreement and discards on
    /// rollback (stale routes must never reach storage).
    pub fn complete_optimistic<T: Elem>(
        &self,
        proc: &mut Proc,
        pending: PendingVote<T>,
    ) -> VoteOutcome<T> {
        let mut payloads: Vec<Vec<T>> = Vec::with_capacity(pending.nmembers);
        payloads.resize_with(pending.nmembers, Vec::new);
        let mut agreed = pending.vote >= 0;
        for (d, h) in pending.recvs {
            let (theirs, payload): (i64, Vec<T>) = proc.wait(h);
            if theirs != pending.vote {
                agreed = false;
            }
            payloads[d] = payload;
        }
        VoteOutcome {
            agreed: agreed.then_some(pending.vote as u64),
            payloads,
        }
    }

    /// Blocking form of the optimistic exchange (for consumers replaying
    /// without interior work to overlap): the same header-carrying fused
    /// messages, moved with blocking sends/receives so no split-phase
    /// accounting is incurred.
    pub fn exchange_optimistic_blocking<T: Elem, W: ScheduleWorld<T>>(
        &self,
        proc: &mut Proc,
        team: &Team,
        vote: i64,
        hit: Option<(&CommSchedule, &W)>,
    ) -> VoteOutcome<T> {
        let q = team.len();
        let replies: Vec<Vec<T>> = match hit {
            Some((sched, world)) => Self::serve(proc, q, sched, world),
            None => vec![Vec::new(); q],
        };
        let replies: Vec<(i64, Vec<T>)> = replies.into_iter().map(|v| (vote, v)).collect();
        let values = collective::alltoallv(proc, team, replies);
        let me = team
            .index_of(proc.rank())
            .expect("exchanging processor is a team member");
        let mut agreed = vote >= 0;
        let mut payloads = Vec::with_capacity(q);
        for (d, (theirs, payload)) in values.into_iter().enumerate() {
            if d != me && theirs != vote {
                agreed = false;
            }
            payloads.push(payload);
        }
        VoteOutcome {
            agreed: agreed.then_some(vote as u64),
            payloads,
        }
    }

    /// Scatter the payloads of an agreed optimistic exchange.
    pub fn scatter_agreed<T: Elem, W: ScheduleWorld<T>>(
        &self,
        proc: &mut Proc,
        sched: &CommSchedule,
        world: &mut W,
        outcome: &VoteOutcome<T>,
    ) {
        debug_assert!(outcome.agreed.is_some(), "scatter of a rolled-back vote");
        Self::scatter(proc, sched, world, &outcome.payloads);
    }

    /// Split-phase request round of a *cold* inspection, for any number
    /// of arrays at once: `reqs[k][d]` is the request vector of array `k`
    /// for team member `d`. Every send (all arrays) is posted before any
    /// receive is waited, so the request latency of later arrays hides
    /// behind the traffic of earlier ones instead of serializing one
    /// synchronous exchange per array. Returns `incoming[k][d]` (own
    /// slots pass through, mirroring an all-to-all).
    ///
    /// Posting-order receive matching pairs the per-array messages: both
    /// sides walk the arrays in the same (static) order.
    pub fn request_rounds(
        request_tag: Tag,
        proc: &mut Proc,
        team: &Team,
        reqs: &[Vec<Vec<u64>>],
    ) -> Vec<Vec<Vec<u64>>> {
        let q = team.len();
        let me = team
            .index_of(proc.rank())
            .expect("requesting processor is a team member");
        for per_peer in reqs {
            debug_assert_eq!(per_peer.len(), q);
            for (d, r) in per_peer.iter().enumerate() {
                if d != me {
                    let _ = proc.isend(team.rank(d), request_tag, r.clone());
                }
            }
        }
        let handles: Vec<Vec<(usize, PendingRecv<Vec<u64>>)>> = reqs
            .iter()
            .map(|_| {
                (0..q)
                    .filter(|&d| d != me)
                    .map(|d| (d, proc.irecv(team.rank(d), request_tag)))
                    .collect()
            })
            .collect();
        let mut incoming: Vec<Vec<Vec<u64>>> = reqs
            .iter()
            .map(|per_peer| {
                let mut inc = vec![Vec::new(); q];
                inc[me] = per_peer[me].clone();
                inc
            })
            .collect();
        for (k, hs) in handles.into_iter().enumerate() {
            for (d, h) in hs {
                incoming[k][d] = proc.wait(h);
            }
        }
        incoming
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::ArraySchedule;
    use kali_machine::{tag, CostModel, Machine, MachineConfig, NS_USER};
    use std::time::Duration;

    fn cfg(p: usize) -> MachineConfig {
        MachineConfig::new(p)
            .with_cost(CostModel::unit())
            .with_watchdog(Duration::from_secs(10))
    }

    /// Flat storage world: one array of `n` words per schedule slot.
    struct VecWorld(Vec<Vec<f64>>);

    impl ScheduleWorld<f64> for VecWorld {
        fn load(&self, k: usize, flat: u64) -> f64 {
            self.0[k][flat as usize]
        }
        fn store(&mut self, k: usize, flat: u64, v: f64) {
            self.0[k][flat as usize] = v;
        }
    }

    /// Ring schedule over 3 procs: everyone requests element `me` from
    /// the next rank (who owns it).
    fn ring_schedule(me: usize, q: usize) -> CommSchedule {
        let nxt = (me + 1) % q;
        let prv = (me + q - 1) % q;
        let mut my_reqs = vec![Vec::new(); q];
        my_reqs[nxt] = vec![me as u64];
        let mut incoming = vec![Vec::new(); q];
        incoming[prv] = vec![prv as u64];
        CommSchedule {
            arrays: vec![ArraySchedule {
                name: "x".into(),
                my_reqs,
                incoming,
                origin: 0,
            }],
            write_hint: 0,
            boundary: vec![],
        }
    }

    const VT: Tag = tag(NS_USER, 0x77);

    #[test]
    fn split_phase_replay_matches_blocking() {
        let go = |split: bool| {
            Machine::run(cfg(3), move |proc| {
                let team = Team::all(3);
                let me = proc.rank();
                let sched = ring_schedule(me, 3);
                let mut world = VecWorld(vec![(0..3).map(|i| (10 * me + i) as f64).collect()]);
                let exec = ScheduleExecutor::new(VT);
                if split {
                    let pending = exec.post(proc, &team, &sched, &world);
                    proc.compute(50.0);
                    exec.complete(proc, &team, &sched, &mut world, pending);
                } else {
                    exec.exchange_blocking(proc, &team, &sched, &mut world);
                }
                (world.0, proc.stats().exchange_words)
            })
        };
        let blocking = go(false);
        let split = go(true);
        for (b, s) in blocking.results.iter().zip(&split.results) {
            assert_eq!(b.0, s.0);
            assert_eq!(b.1, s.1);
            assert_eq!(b.1, 1, "one word requested per proc");
        }
        // Each proc's requested element came from its successor's storage.
        for me in 0..3 {
            let nxt = (me + 1) % 3;
            assert_eq!(split.results[me].0[0][me], (10 * nxt + me) as f64);
        }
        assert!(split.report.elapsed <= blocking.report.elapsed);
    }

    #[test]
    fn optimistic_agreement_replays_and_scatters() {
        let run = Machine::run(cfg(3), |proc| {
            let team = Team::all(3);
            let me = proc.rank();
            let sched = ring_schedule(me, 3);
            let mut world = VecWorld(vec![(0..3).map(|i| (10 * me + i) as f64).collect()]);
            let exec = ScheduleExecutor::new(VT);
            let pending = exec.post_optimistic(proc, &team, 4, Some((&sched, &world)));
            proc.compute(10.0);
            let outcome = exec.complete_optimistic(proc, pending);
            assert_eq!(outcome.agreed, Some(4));
            exec.scatter_agreed(proc, &sched, &mut world, &outcome);
            world.0
        });
        for me in 0..3 {
            let nxt = (me + 1) % 3;
            assert_eq!(run.results[me][0][me], (10 * nxt + me) as f64);
        }
    }

    #[test]
    fn any_dissenting_header_rolls_everyone_back() {
        let run = Machine::run(cfg(3), |proc| {
            let team = Team::all(3);
            let me = proc.rank();
            let sched = ring_schedule(me, 3);
            let world = VecWorld(vec![vec![0.0; 3]]);
            let exec = ScheduleExecutor::new(VT);
            // Proc 1 has no local hit: bare headers, vote NO_VOTE.
            let (vote, hit) = if me == 1 {
                (NO_VOTE, None)
            } else {
                (4, Some((&sched, &world)))
            };
            let pending = exec.post_optimistic(proc, &team, vote, hit);
            let outcome = exec.complete_optimistic(proc, pending);
            outcome.agreed
        });
        assert!(run.results.iter().all(|r| r.is_none()));
    }

    #[test]
    fn blocking_optimistic_exchange_agrees_with_split() {
        let run = Machine::run(cfg(4), |proc| {
            let team = Team::all(4);
            let me = proc.rank();
            let sched = ring_schedule(me, 4);
            let mut world = VecWorld(vec![(0..4).map(|i| (10 * me + i) as f64).collect()]);
            let exec = ScheduleExecutor::new(VT);
            let outcome = exec.exchange_optimistic_blocking(proc, &team, 2, Some((&sched, &world)));
            assert_eq!(outcome.agreed, Some(2));
            exec.scatter_agreed(proc, &sched, &mut world, &outcome);
            world.0
        });
        for me in 0..4 {
            let nxt = (me + 1) % 4;
            assert_eq!(run.results[me][0][me], (10 * nxt + me) as f64);
        }
    }

    #[test]
    fn request_rounds_transpose_per_array() {
        let run = Machine::run(cfg(3), |proc| {
            let team = Team::all(3);
            let me = proc.rank() as u64;
            // Array 0: everyone asks peer d for element 100*me + d;
            // array 1: empty requests except to peer 0.
            let reqs = vec![
                (0..3).map(|d| vec![100 * me + d]).collect::<Vec<_>>(),
                (0..3)
                    .map(|d| if d == 0 { vec![me] } else { vec![] })
                    .collect(),
            ];
            ScheduleExecutor::request_rounds(VT, proc, &team, &reqs)
        });
        for d in 0..3usize {
            for s in 0..3usize {
                assert_eq!(run.results[d][0][s], vec![100 * s as u64 + d as u64]);
            }
            let want: Vec<Vec<u64>> = (0..3)
                .map(|s| if d == 0 { vec![s as u64] } else { vec![] })
                .collect();
            assert_eq!(run.results[d][1], want);
        }
    }

    #[test]
    fn singleton_team_optimistic_needs_no_messages() {
        let run = Machine::run(cfg(1), |proc| {
            let team = Team::all(1);
            let world = VecWorld(vec![vec![1.0]]);
            let sched = CommSchedule {
                arrays: vec![],
                write_hint: 0,
                boundary: vec![],
            };
            let exec = ScheduleExecutor::new(VT);
            let pending = exec.post_optimistic(proc, &team, 7, Some((&sched, &world)));
            let hit = exec.complete_optimistic(proc, pending).agreed;
            let pending = exec.post_optimistic::<f64, VecWorld>(proc, &team, NO_VOTE, None);
            let miss = exec.complete_optimistic(proc, pending).agreed;
            (hit, miss)
        });
        assert_eq!(run.results[0], (Some(7), None));
        assert_eq!(run.report.total_msgs, 0);
    }
}
