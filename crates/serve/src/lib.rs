//! # kali-serve — multi-tenant solve serving over shared schedule caches
//!
//! A long-running solver service accepts a stream of independent solve
//! requests — each naming a grid shape, a distribution, a stencil and a
//! tolerance — from many tenants. The expensive part of every request is
//! not the sweeps themselves but the *analytic halo walk* that derives
//! each exchange's communication schedule; and that cost is keyed by
//! geometry, not by tenant. The [`kali_array::HaloKey`] site id is a
//! hash of the array's shape (extents, ghost widths, corner policy), and
//! the full key adds only the distributions, the team and the
//! distribution generation — fresh arrays all start at generation 0, so
//! **two tenants with the same shape are cache hits of each other**.
//!
//! [`serve`] exploits this: requests are batched by schedule shape
//! ([`batch_order`]) so same-shaped tenants run back-to-back, the first
//! paying the analytic build and the rest replaying it from the shared
//! [`kali_array::HaloCache`] with the consensus vote piggybacked on the
//! value messages. The cache is *bounded*: [`ServeConfig::halo_budget`]
//! caps total entries with per-`(site, team)` LRU eviction that keeps
//! the SPMD vote gate up (an evicted entry degrades to a recoverable
//! rollback, never a collective desync), so a shape-diverse stream
//! cannot grow the server's memory without bound.
//!
//! Everything runs SPMD inside one [`Machine::run`]: every processor
//! executes the whole request stream collectively, once per pass — pass
//! 0 is the cold (cache-filling) pass, later passes are warm. Results
//! are replicated reductions, so the per-request checksums are bitwise
//! comparable across passes *and* across backends (sim vs threads).

use std::time::{Duration, Instant};

use kali_array::{DistArray2, Real};
use kali_grid::{DistSpec, ProcGrid};
use kali_machine::{BackendKind, CostModel, Machine, MachineConfig, RunReport, Topology};
use kali_runtime::{Ctx, Ghosts};

/// Which stencil a request sweeps. The two kinds derive different halo
/// schedules (faces-only vs corner-completing), so they never share
/// cache entries even at equal shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolverKind {
    /// 5-point Jacobi relaxation (faces-only ghosts).
    Jacobi5,
    /// 9-point weighted smoothing (corner-completing ghosts).
    Stencil9,
}

/// How a request's array is laid over the (1-D) processor team.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DistKind {
    /// Rows distributed, columns local (`DistSpec::block_local`).
    Rows,
    /// Rows local, columns distributed (`DistSpec::local_block`).
    Cols,
}

/// One tenant's solve request.
#[derive(Debug, Clone)]
pub struct SolveRequest {
    /// Tenant id; seeds the initial data, so distinct tenants produce
    /// distinct answers from identical schedules.
    pub tenant: u64,
    /// Global extents `[n, m]` of the 2-D grid (each ≥ 3, and the
    /// distributed extent at least the team size).
    pub shape: [usize; 2],
    pub dist: DistKind,
    pub solver: SolverKind,
    /// Sweep cap.
    pub iters: usize,
    /// Stop early once the max pointwise change of a sweep drops below
    /// this (0.0 never stops early).
    pub tol: f64,
}

impl SolveRequest {
    /// The schedule-shape key: everything that determines the halo
    /// schedule this request derives — shape, distribution, stencil —
    /// and nothing tenant-specific. Requests with equal keys are cache
    /// hits of each other.
    pub fn shape_key(&self) -> u64 {
        // FNV-1a over the schedule-relevant fields, mirroring the
        // HaloKey site hash's construction (not its exact value; this
        // key only needs to partition the stream).
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        mix(self.shape[0] as u64);
        mix(self.shape[1] as u64);
        mix(match self.dist {
            DistKind::Rows => 1,
            DistKind::Cols => 2,
        });
        mix(match self.solver {
            SolverKind::Jacobi5 => 1,
            SolverKind::Stencil9 => 2,
        });
        h
    }
}

/// Batch the stream: indices into `reqs`, grouped so requests with equal
/// [`SolveRequest::shape_key`] run back-to-back. Groups keep first-seen
/// order and requests keep arrival order within their group, so the
/// batching is deterministic and stable.
pub fn batch_order(reqs: &[SolveRequest]) -> Vec<usize> {
    let mut groups: Vec<(u64, Vec<usize>)> = Vec::new();
    for (i, r) in reqs.iter().enumerate() {
        let k = r.shape_key();
        match groups.iter_mut().find(|(g, _)| *g == k) {
            Some((_, v)) => v.push(i),
            None => groups.push((k, vec![i])),
        }
    }
    groups.into_iter().flat_map(|(_, v)| v).collect()
}

/// Server configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    pub nprocs: usize,
    pub backend: BackendKind,
    /// Global halo-cache entry budget (`None` = unbounded). SPMD-uniform
    /// by construction: every processor applies the same budget.
    pub halo_budget: Option<usize>,
    /// How many times to run the whole stream (≥ 1). Pass 0 is cold;
    /// subsequent passes measure the warm steady state.
    pub passes: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            nprocs: 4,
            backend: BackendKind::Sim,
            halo_budget: None,
            passes: 2,
        }
    }
}

/// Counters for one pass over the stream, summed across processors
/// (elapsed is the max).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PassStats {
    /// Seconds for the pass: virtual time on the simulator, wall clock
    /// on the threads backend.
    pub elapsed: f64,
    /// Requests served this pass.
    pub requests: usize,
    /// Analytic schedule builds (cold derivations) during the pass.
    pub inspector_runs: u64,
    /// Warm exchanges served by piggybacked-vote replay.
    pub optimistic_hits: u64,
    pub rollbacks: u64,
    /// Cache entries evicted under the budget during the pass.
    pub evictions: u64,
    /// Halo-cache entries resident at the end of the pass.
    pub cache_len: usize,
}

impl PassStats {
    pub fn requests_per_sec(&self) -> f64 {
        self.requests as f64 / self.elapsed.max(1e-9)
    }
}

/// What [`serve`] produced.
#[derive(Debug)]
pub struct ServeOutcome {
    /// Execution order (indices into the request slice) after batching.
    pub order: Vec<usize>,
    /// Per-request checksum (bits of the replicated final-sum reduction),
    /// in *original* request order. Identical across passes and across
    /// backends by construction; [`serve`] panics if a warm pass ever
    /// disagrees with the cold one.
    pub checksums: Vec<u64>,
    /// One entry per pass: `passes[0]` is cold, the rest warm.
    pub passes: Vec<PassStats>,
    pub report: RunReport,
}

fn machine_cfg(cfg: &ServeConfig) -> MachineConfig {
    Machine::build(cfg.backend, Topology::FullyConnected, CostModel::ipsc2())
        .procs(cfg.nprocs)
        .watchdog(Duration::from_secs(120))
        .config()
}

/// Raw per-processor counters for one pass, merged by [`serve`].
struct PassRaw {
    virt: f64,
    wall: f64,
    inspector_runs: u64,
    optimistic_hits: u64,
    rollbacks: u64,
    evictions: u64,
    cache_len: usize,
}

/// Run one request under the shared context; returns the checksum.
///
/// Generic over the element type: the grid is seeded, swept, and summed
/// in `T`, the convergence measure and final reduction accumulate in
/// `f64`, and the checksum goes out through [`Elem::checksum_bits`] so
/// the wire format never assumes an 8-byte element. The serve stream
/// instantiates `T = f64` today; an `f32` tenant class only needs a
/// request field.
fn run_request<T: Real>(ctx: &mut Ctx, grid: &ProcGrid, req: &SolveRequest) -> u64 {
    let [n, m] = req.shape;
    assert!(n >= 3 && m >= 3, "shape {n}x{m} too small for a stencil");
    let spec = match req.dist {
        DistKind::Rows => DistSpec::block_local(),
        DistKind::Cols => DistSpec::local_block(),
    };
    let ghosts = match req.solver {
        SolverKind::Jacobi5 => Ghosts::faces(1),
        SolverKind::Stencil9 => Ghosts::full(1),
    };
    let tenant = req.tenant;
    let mut u = DistArray2::from_fn(ctx.rank(), grid, &spec, [n, m], [1, 1], |[i, j]| {
        T::from_f64(((i * 31 + j * 17 + tenant as usize * 13) % 97) as f64 / 97.0)
    });
    for _ in 0..req.iters {
        // update2's body is a plain Fn; the convergence measure threads
        // out through a Cell.
        let diff = std::cell::Cell::new(0.0f64);
        match req.solver {
            SolverKind::Jacobi5 => {
                let w = T::from_f64(0.25);
                ctx.plan()
                    .reads(&mut u, ghosts)
                    .update2(1..n - 1, 1..m - 1, 5.0, |old, i, j| {
                        let new = w
                            * (old.at(i + 1, j)
                                + old.at(i - 1, j)
                                + old.at(i, j + 1)
                                + old.at(i, j - 1));
                        diff.set(diff.get().max((new - old.at(i, j)).to_f64().abs()));
                        new
                    });
            }
            SolverKind::Stencil9 => {
                let (wc, wf, wd) = (T::from_f64(0.2), T::from_f64(0.125), T::from_f64(0.075));
                ctx.plan()
                    .reads(&mut u, ghosts)
                    .update2(1..n - 1, 1..m - 1, 10.0, |old, i, j| {
                        let new = wc * old.at(i, j)
                            + wf * (old.at(i + 1, j)
                                + old.at(i - 1, j)
                                + old.at(i, j + 1)
                                + old.at(i, j - 1))
                            + wd * (old.at(i + 1, j + 1)
                                + old.at(i + 1, j - 1)
                                + old.at(i - 1, j + 1)
                                + old.at(i - 1, j - 1));
                        diff.set(diff.get().max((new - old.at(i, j)).to_f64().abs()));
                        new
                    });
            }
        }
        if req.tol > 0.0 && ctx.allreduce_max(diff.get()) < req.tol {
            break;
        }
    }
    let mut local = 0.0;
    u.for_each_owned(|_, v| local += v.to_f64());
    T::from_f64(ctx.allreduce_sum(local)).checksum_bits()
}

/// Serve the stream: batch by schedule shape, run every pass SPMD on one
/// machine with one shared, budgeted halo cache per processor. See the
/// crate docs for the cache-sharing model.
pub fn serve(cfg: &ServeConfig, reqs: &[SolveRequest]) -> ServeOutcome {
    assert!(cfg.passes >= 1, "at least one pass");
    let order = batch_order(reqs);
    let owned: Vec<SolveRequest> = reqs.to_vec();
    let exec_order = order.clone();
    let backend = cfg.backend;
    let serve_cfg = *cfg;
    let run = Machine::run(machine_cfg(cfg), move |proc| {
        let grid = ProcGrid::new_1d(proc.nprocs());
        let mut ctx = Ctx::new(proc, grid.clone());
        if let Some(b) = serve_cfg.halo_budget {
            ctx.set_halo_budget(b);
        }
        let mut checksums = vec![0u64; owned.len()];
        let mut passes: Vec<PassRaw> = Vec::with_capacity(serve_cfg.passes);
        for pass in 0..serve_cfg.passes {
            let stats0 = ctx.proc().stats().clone();
            let virt0 = ctx.proc().clock();
            let wall0 = Instant::now();
            for &i in &exec_order {
                let sum = run_request::<f64>(&mut ctx, &grid, &owned[i]);
                if pass == 0 {
                    checksums[i] = sum;
                } else {
                    assert_eq!(
                        sum, checksums[i],
                        "request {i} (tenant {}): warm replay changed the bits",
                        owned[i].tenant
                    );
                }
            }
            let virt1 = ctx.proc().clock();
            let wall1 = wall0.elapsed().as_secs_f64();
            let stats1 = ctx.proc().stats().clone();
            passes.push(PassRaw {
                virt: virt1 - virt0,
                wall: wall1,
                inspector_runs: stats1.inspector_runs - stats0.inspector_runs,
                optimistic_hits: stats1.optimistic_hits - stats0.optimistic_hits,
                rollbacks: stats1.rollbacks - stats0.rollbacks,
                evictions: stats1.schedule_evictions - stats0.schedule_evictions,
                cache_len: ctx.halo_len(),
            });
        }
        (passes, checksums)
    });

    // Merge the replicated per-processor views: counters sum, times max,
    // SPMD-uniform values (checksums, cache length) must agree exactly.
    let nreq = reqs.len();
    let npass = cfg.passes;
    let mut passes = Vec::with_capacity(npass);
    for p in 0..npass {
        let mut s = PassStats {
            elapsed: 0.0,
            requests: nreq,
            inspector_runs: 0,
            optimistic_hits: 0,
            rollbacks: 0,
            evictions: 0,
            cache_len: run.results[0].0[p].cache_len,
        };
        for (raws, _) in &run.results {
            let r = &raws[p];
            s.elapsed = s.elapsed.max(match backend {
                BackendKind::Sim => r.virt,
                BackendKind::Threads => r.wall,
            });
            s.inspector_runs += r.inspector_runs;
            s.optimistic_hits += r.optimistic_hits;
            s.rollbacks += r.rollbacks;
            s.evictions += r.evictions;
            assert_eq!(
                r.cache_len, s.cache_len,
                "cache length must be SPMD-uniform"
            );
        }
        passes.push(s);
    }
    let checksums = run.results[0].1.clone();
    for (_, sums) in &run.results {
        assert_eq!(sums, &checksums, "checksums are replicated reductions");
    }
    ServeOutcome {
        order,
        checksums,
        passes,
        report: run.report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(tenant: u64, shape: [usize; 2], dist: DistKind, solver: SolverKind) -> SolveRequest {
        SolveRequest {
            tenant,
            shape,
            dist,
            solver,
            iters: 3,
            tol: 0.0,
        }
    }

    #[test]
    fn batching_groups_equal_shapes_stably() {
        let reqs = vec![
            req(1, [12, 12], DistKind::Rows, SolverKind::Jacobi5),
            req(2, [16, 12], DistKind::Rows, SolverKind::Jacobi5),
            req(3, [12, 12], DistKind::Rows, SolverKind::Jacobi5),
            req(4, [12, 12], DistKind::Cols, SolverKind::Jacobi5),
            req(5, [16, 12], DistKind::Rows, SolverKind::Jacobi5),
        ];
        // Same shape+dist+solver collapses; dist is schedule-relevant.
        assert_eq!(batch_order(&reqs), vec![0, 2, 1, 4, 3]);
    }

    #[test]
    fn same_shape_tenants_are_cache_hits_of_each_other() {
        // 6 tenants over 2 distinct schedule shapes: the cold pass pays
        // exactly one analytic build per shape per processor, and the
        // warm pass rebuilds nothing and never rolls back.
        let p = 2;
        let reqs: Vec<SolveRequest> = (0..6)
            .map(|t| {
                let shape = if t % 2 == 0 { [12, 8] } else { [8, 12] };
                req(t, shape, DistKind::Rows, SolverKind::Jacobi5)
            })
            .collect();
        let cfg = ServeConfig {
            nprocs: p,
            passes: 2,
            ..Default::default()
        };
        let out = serve(&cfg, &reqs);
        assert_eq!(
            out.passes[0].inspector_runs,
            2 * p as u64,
            "cold: one build per schedule shape per processor"
        );
        assert_eq!(out.passes[1].inspector_runs, 0, "warm: zero rebuilds");
        assert_eq!(out.passes[1].rollbacks, 0, "warm: zero rollbacks");
        assert!(out.passes[1].optimistic_hits > 0);
        // Distinct tenants at the same shape still get distinct answers.
        assert_ne!(out.checksums[0], out.checksums[2]);
    }

    #[test]
    fn budget_bounds_the_cache_under_shape_diversity() {
        let reqs: Vec<SolveRequest> = (0..6)
            .map(|t| {
                req(
                    t,
                    [8 + 2 * t as usize, 8],
                    DistKind::Rows,
                    SolverKind::Jacobi5,
                )
            })
            .collect();
        let cfg = ServeConfig {
            nprocs: 2,
            halo_budget: Some(3),
            passes: 1,
            ..Default::default()
        };
        let out = serve(&cfg, &reqs);
        assert_eq!(out.passes[0].cache_len, 3, "entries bounded by the budget");
        assert!(out.passes[0].evictions > 0);
        assert_eq!(out.report.total_schedule_evictions, out.passes[0].evictions);
    }

    #[test]
    fn warm_throughput_beats_cold_on_the_simulator() {
        let reqs: Vec<SolveRequest> = (0..4)
            .map(|t| req(t, [16, 16], DistKind::Cols, SolverKind::Stencil9))
            .collect();
        let out = serve(
            &ServeConfig {
                nprocs: 4,
                passes: 2,
                ..Default::default()
            },
            &reqs,
        );
        assert!(
            out.passes[1].requests_per_sec() > out.passes[0].requests_per_sec(),
            "warm {} req/s vs cold {} req/s",
            out.passes[1].requests_per_sec(),
            out.passes[0].requests_per_sec()
        );
    }

    #[test]
    fn sim_and_threads_agree_bitwise() {
        let reqs = vec![
            req(7, [12, 12], DistKind::Rows, SolverKind::Jacobi5),
            req(8, [12, 12], DistKind::Rows, SolverKind::Stencil9),
            req(9, [10, 14], DistKind::Cols, SolverKind::Jacobi5),
        ];
        let mk = |backend| ServeConfig {
            nprocs: 2,
            backend,
            passes: 2,
            ..Default::default()
        };
        let sim = serve(&mk(BackendKind::Sim), &reqs);
        let thr = serve(&mk(BackendKind::Threads), &reqs);
        assert_eq!(sim.checksums, thr.checksums);
    }

    #[test]
    fn tolerance_stops_sweeping_early() {
        let mut r = req(1, [12, 12], DistKind::Rows, SolverKind::Jacobi5);
        r.iters = 50;
        r.tol = f64::INFINITY; // first sweep's change is always below
        let out = serve(
            &ServeConfig {
                nprocs: 2,
                passes: 1,
                ..Default::default()
            },
            &[r],
        );
        // One sweep means one exchange: exactly one analytic build per
        // processor, no replays.
        assert_eq!(out.passes[0].inspector_runs, 2);
        assert_eq!(out.passes[0].optimistic_hits, 0);
    }
}
