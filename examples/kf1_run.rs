//! Run one of the paper's KF1 listings through the interpreter on a
//! simulated machine.
//!
//! ```sh
//! cargo run --example kf1_run            # runs Listing 3 (jacobi)
//! cargo run --example kf1_run -- tri     # runs Listings 4+5 (tridiagonal)
//! cargo run --example kf1_run -- shift   # the §2 doall semantics example
//! cargo run --example kf1_run -- adi     # Listings 7+8 (ADI)
//! cargo run --example kf1_run -- spmv    # sparse SpMV via the builtin
//! ```

use kali::lang::{listing, run_source, HostValue};
use kali::machine::{BackendKind, CostModel, Machine, MachineConfig, Topology};

/// Machine for this example: iPSC/2-era costs on the virtual-time
/// simulator by default; `KALI_BACKEND=threads` runs the same program
/// on real threads (wall-clock timing, zero virtual time).
fn machine_cfg(p: usize) -> MachineConfig {
    Machine::build(
        BackendKind::from_env(),
        Topology::FullyConnected,
        CostModel::ipsc2(),
    )
    .procs(p)
    .config()
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "jacobi".into());
    let src = listing(&which).unwrap_or_else(|| {
        eprintln!("unknown listing {which:?}; available: jacobi, tri, shift, adi, spmv");
        std::process::exit(1);
    });
    println!("--- KF1 source ({which}) ---\n{src}\n--- running ---\n");

    match which.as_str() {
        "jacobi" => {
            let np = 16i64;
            let w = (np + 1) as usize;
            let f: Vec<f64> = (0..w * w)
                .map(|k| {
                    let (i, j) = (k / w, k % w);
                    if i == 0 || i == w - 1 || j == 0 || j == w - 1 {
                        0.0
                    } else if i == w / 2 && j == w / 2 {
                        -0.25
                    } else {
                        0.0
                    }
                })
                .collect();
            let run = run_source(
                machine_cfg(4),
                src,
                "jacobi",
                &[2, 2],
                &[
                    HostValue::Array {
                        data: vec![0.0; w * w],
                        bounds: vec![(0, np), (0, np)],
                    },
                    HostValue::Array {
                        data: f,
                        bounds: vec![(0, np), (0, np)],
                    },
                    HostValue::Int(np),
                    HostValue::Int(30),
                ],
            )
            .expect("listing runs");
            let x = &run.arrays[0].1;
            println!(
                "u(center) = {:.6} after 30 interpreted sweeps",
                x[(w / 2) * w + w / 2]
            );
            println!("{}", run.report);
        }
        "shift" => {
            let n = 16usize;
            let run = run_source(
                machine_cfg(4),
                src,
                "shift",
                &[4],
                &[
                    HostValue::Array {
                        data: (1..=n).map(|i| i as f64).collect(),
                        bounds: vec![(1, n as i64)],
                    },
                    HostValue::Int(n as i64),
                ],
            )
            .expect("listing runs");
            println!("shifted: {:?}", run.arrays[0].1);
            println!("{}", run.report);
        }
        "tri" => {
            let n = 64usize;
            let p = 4usize;
            let sys = kali::kernels::TriDiag::random_dd(n, 1);
            let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.2).sin()).collect();
            let f = sys.apply(&x_true);
            let run = run_source(
                machine_cfg(p),
                src,
                "tri",
                &[p],
                &[
                    HostValue::Array {
                        data: vec![0.0; n],
                        bounds: vec![(1, n as i64)],
                    },
                    HostValue::Array {
                        data: f,
                        bounds: vec![(1, n as i64)],
                    },
                    HostValue::Array {
                        data: sys.b.clone(),
                        bounds: vec![(1, n as i64)],
                    },
                    HostValue::Array {
                        data: sys.a.clone(),
                        bounds: vec![(1, n as i64)],
                    },
                    HostValue::Array {
                        data: sys.c.clone(),
                        bounds: vec![(1, n as i64)],
                    },
                    HostValue::Int(n as i64),
                ],
            )
            .expect("listing runs");
            let x = &run.arrays[0].1;
            let err = x
                .iter()
                .zip(&x_true)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            println!("solved n = {n} on {p} processors, max error {err:.2e}");
            println!("{}", run.report);
        }
        "adi" => {
            use kali::solvers::adi::suggested_rho;
            use kali::solvers::seq::{apply2, Grid2};
            use kali::solvers::Pde;

            let np = 16usize;
            let w = np + 1;
            let pde = Pde::poisson();
            let us = Grid2::random_interior(np, np, 7);
            let f = apply2(&pde, &us);
            let rho = suggested_rho(&pde, np, np);
            let fdata: Vec<f64> = (0..w * w).map(|k| f.at(k / w, k % w)).collect();
            let iters = 10i64;
            let run = run_source(
                machine_cfg(4),
                src,
                "adi",
                &[2, 2],
                &[
                    HostValue::Array {
                        data: vec![0.0; w * w],
                        bounds: vec![(0, np as i64), (0, np as i64)],
                    },
                    HostValue::Array {
                        data: fdata,
                        bounds: vec![(0, np as i64), (0, np as i64)],
                    },
                    HostValue::Array {
                        data: vec![0.0; w * w],
                        bounds: vec![(0, np as i64), (0, np as i64)],
                    },
                    HostValue::Int(np as i64),
                    HostValue::Real(rho),
                    HostValue::Int(iters),
                    HostValue::Real(1.0),
                    HostValue::Real(1.0),
                ],
            )
            .expect("listing runs");
            let x = &run.arrays[0].1;
            let err = (0..w * w)
                .map(|k| (x[k] - us.at(k / w, k % w)).abs())
                .fold(0.0f64, f64::max);
            println!("ADI {iters} iterations on 2x2: max error vs truth {err:.2e}");
            println!("{}", run.report);
        }
        "spmv" => {
            // Power-iteration-style SpMV loop on a CSR band {i-2, i, i+2}
            // (1-based, as the program sees it): the gather schedule is
            // derived from the *values* of rp/ci by the inspector, cached,
            // and replayed warm on every later trip.
            let n = 32usize;
            let mut rp = vec![1.0];
            let mut ci: Vec<f64> = Vec::new();
            let mut av: Vec<f64> = Vec::new();
            for i in 1..=n as i64 {
                for c in [i - 2, i, i + 2] {
                    if c >= 1 && c <= n as i64 {
                        ci.push(c as f64);
                        av.push(((i * 5 + c * 3) % 7) as f64 + 1.0);
                    }
                }
                rp.push((ci.len() + 1) as f64);
            }
            let nz = ci.len();
            let x0: Vec<f64> = (0..n).map(|i| (i % 9) as f64 * 0.75 - 2.0).collect();
            let iters = 8i64;
            let run = run_source(
                machine_cfg(4),
                src,
                "spmvit",
                &[4],
                &[
                    HostValue::Array {
                        data: vec![0.0; n],
                        bounds: vec![(1, n as i64)],
                    },
                    HostValue::Array {
                        data: x0,
                        bounds: vec![(1, n as i64)],
                    },
                    HostValue::Array {
                        data: rp,
                        bounds: vec![(1, (n + 1) as i64)],
                    },
                    HostValue::Array {
                        data: ci,
                        bounds: vec![(1, nz as i64)],
                    },
                    HostValue::Array {
                        data: av,
                        bounds: vec![(1, nz as i64)],
                    },
                    HostValue::Int(n as i64),
                    HostValue::Int(nz as i64),
                    HostValue::Int(iters),
                ],
            )
            .expect("listing runs");
            let y = &run.arrays[0].1;
            let norm = y.iter().map(|v| v * v).sum::<f64>().sqrt();
            println!(
                "{iters} SpMV trips on 4 processors: |y| = {norm:.6}, \
                 {} inspections / {} warm replays / {} rollbacks",
                run.report.total_inspector_runs,
                run.report.total_optimistic_hits,
                run.report.total_rollbacks,
            );
            println!("{}", run.report);
        }
        _ => unreachable!(),
    }
}
