//! Listings 1, 2 and 3 side by side: the same Jacobi iteration written
//! sequentially, in hand-coded message passing, and against the KF1
//! runtime — with identical results and (virtually) identical cost for the
//! two parallel versions (paper claims C1/C2).
//!
//! ```sh
//! cargo run --example jacobi_comparison
//! ```

use kali::mp::jacobi_mp;
use kali::prelude::*;

/// Machine for this example: iPSC/2-era costs on the virtual-time
/// simulator by default; `KALI_BACKEND=threads` runs the same program
/// on real threads (wall-clock timing, zero virtual time).
fn machine_cfg(p: usize) -> MachineConfig {
    Machine::build(
        BackendKind::from_env(),
        Topology::FullyConnected,
        CostModel::ipsc2(),
    )
    .procs(p)
    .config()
}
use kali::solvers::jacobi::jacobi_step;
use kali::solvers::seq::{jacobi_seq_step, Grid2};

fn main() {
    let n = 64usize;
    let iters = 20usize;
    let fsrc = |i: usize, j: usize| {
        if i == 0 || i == n || j == 0 || j == n {
            0.0
        } else {
            ((i * 7 + j * 3) % 11) as f64 / 100.0 - 0.05
        }
    };

    // --- Listing 1: sequential.
    let f = Grid2::from_fn(n, n, fsrc);
    let mut x_seq = Grid2::zeros(n, n);
    for _ in 0..iters {
        jacobi_seq_step(&mut x_seq, &f);
    }

    // --- Listing 2: hand-written message passing on 2x2 processes.
    let mp = Machine::run(machine_cfg(4), move |proc| {
        jacobi_mp(proc, 2, 2, n, &fsrc, iters)
    });

    // --- Listing 3: KF1 runtime, same machine.
    let kf1 = Machine::run(machine_cfg(4), move |proc| {
        let grid = ProcGrid::new_2d(2, 2);
        let spec = DistSpec::block2();
        let mut u = DistArray2::<f64>::new(proc.rank(), &grid, &spec, [n + 1, n + 1], [1, 1]);
        let farr = DistArray2::from_fn(
            proc.rank(),
            &grid,
            &spec,
            [n + 1, n + 1],
            [0, 0],
            |[i, j]| fsrc(i, j),
        );
        let mut ctx = Ctx::new(proc, grid);
        for _ in 0..iters {
            jacobi_step(&mut ctx, &mut u, &farr);
        }
        u.gather_to_root(ctx.proc())
    });

    // Verify all three agree.
    let kf1_x = kf1.results[0].as_ref().unwrap();
    let mut max_diff_kf1 = 0.0f64;
    for i in 0..=n {
        for j in 0..=n {
            max_diff_kf1 = max_diff_kf1.max((kf1_x[i * (n + 1) + j] - x_seq.at(i, j)).abs());
        }
    }
    let mut max_diff_mp = 0.0f64;
    for b in &mp.results {
        for i in 0..b.len.0 {
            for j in 0..b.len.1 {
                let v = b.data[i * b.len.1 + j];
                max_diff_mp = max_diff_mp.max((v - x_seq.at(b.lo.0 + i, b.lo.1 + j)).abs());
            }
        }
    }

    println!("Jacobi {n}x{n}, {iters} sweeps, 2x2 processors\n");
    println!("max |MP  - sequential| = {max_diff_mp:.3e}");
    println!("max |KF1 - sequential| = {max_diff_kf1:.3e}\n");
    println!(
        "{:<22} {:>14} {:>8} {:>10}",
        "version", "virtual time", "msgs", "words"
    );
    println!(
        "{:<22} {:>12.4e} s {:>8} {:>10}",
        "hand message passing", mp.report.elapsed, mp.report.total_msgs, mp.report.total_words
    );
    println!(
        "{:<22} {:>12.4e} s {:>8} {:>10}",
        "KF1 runtime", kf1.report.elapsed, kf1.report.total_msgs, kf1.report.total_words
    );
    println!(
        "\ntime ratio KF1/MP = {:.3}  (claim C2: ≈ 1)",
        kf1.report.elapsed / mp.report.elapsed
    );
}
