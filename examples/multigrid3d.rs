//! 3-D semicoarsening multigrid with zebra plane relaxation (Listing 9):
//! convergence history plus the §5 processor-array shape ablation.
//!
//! ```sh
//! cargo run --example multigrid3d
//! ```

use kali::prelude::*;
use kali::solvers::mg3::mg3_vcycle;
use kali::solvers::seq::{apply3, Grid3};
use kali::solvers::transfer::resid3;

/// Machine for this example: iPSC/2-era costs on the virtual-time
/// simulator by default; `KALI_BACKEND=threads` runs the same program
/// on real threads (wall-clock timing, zero virtual time).
fn machine_cfg(p: usize) -> MachineConfig {
    Machine::build(
        BackendKind::from_env(),
        Topology::FullyConnected,
        CostModel::ipsc2(),
    )
    .procs(p)
    .config()
}

fn run_shape(n: usize, p0: usize, p1: usize, cycles: usize) -> (Vec<f64>, RunReport) {
    let pde = Pde::poisson();
    let us = Grid3::random_interior(n, n, n, 7);
    let f = apply3(&pde, &us);
    let run = Machine::run(machine_cfg(p0 * p1), move |proc| {
        let grid = ProcGrid::new_2d(p0, p1);
        let spec = DistSpec::local_block_block();
        let mut u =
            DistArray3::<f64>::new(proc.rank(), &grid, &spec, [n + 1, n + 1, n + 1], [0, 1, 1]);
        let farr = DistArray3::from_fn(
            proc.rank(),
            &grid,
            &spec,
            [n + 1, n + 1, n + 1],
            [0, 1, 1],
            |[i, j, k]| f.at(i, j, k),
        );
        let mut ctx = Ctx::new(proc, grid);
        let mut norms = Vec::new();
        for _ in 0..cycles {
            mg3_vcycle(&mut ctx, &pde, &mut u, &farr, 1);
            let mut r = resid3(&mut ctx, &pde, &mut u, &farr);
            ctx.plan().reads(&mut r, Ghosts::full(1)).refresh();
            norms.push(global_max_abs(&mut ctx, &r));
        }
        norms
    });
    (run.results[0].clone(), run.report)
}

fn main() {
    let n = 16usize;
    let cycles = 4;
    println!("mg3: {n}^3 Poisson, zebra plane relaxation, z-semicoarsening\n");

    let (norms, report) = run_shape(n, 2, 2, cycles);
    println!("residual max-norm per V-cycle (2x2 grid):");
    for (c, r) in norms.iter().enumerate() {
        println!("  cycle {:>2}: {r:.4e}", c + 1);
    }
    println!(
        "\n2x2: virtual time {:.4e} s, {} msgs, {} words",
        report.elapsed, report.total_msgs, report.total_words
    );

    println!("\nprocessor-array shape ablation (same source, same 4 processors):");
    for (p0, p1) in [(2usize, 2usize), (1, 4), (4, 1)] {
        let (norms, report) = run_shape(n, p0, p1, 2);
        println!(
            "  {p0}x{p1}: virtual time {:.4e} s, {:>7} words, residual {:.2e}",
            report.elapsed,
            report.total_words,
            norms.last().unwrap()
        );
    }
    println!("\n(§5: the best distribution depends on problem and machine)");
}
