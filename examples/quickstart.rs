//! Quickstart: solve a small Poisson problem with Jacobi iteration on a
//! 2×2 virtual distributed machine, and print the run report.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use kali::prelude::*;
use kali::solvers::jacobi::jacobi_run;

/// Machine for this example: iPSC/2-era costs on the virtual-time
/// simulator by default; `KALI_BACKEND=threads` runs the same program
/// on real threads (wall-clock timing, zero virtual time).
fn machine_cfg(p: usize) -> MachineConfig {
    Machine::build(
        BackendKind::from_env(),
        Topology::FullyConnected,
        CostModel::ipsc2(),
    )
    .procs(p)
    .config()
}

fn main() {
    let n = 32usize;
    // A 4-processor machine with 1989-class communication costs.
    let cfg = machine_cfg(4);
    let run = Machine::run(cfg, move |proc| {
        // processors procs(2, 2)
        let grid = ProcGrid::new_2d(2, 2);
        // real u(0:n, 0:n), f(0:n, 0:n) dist (block, block)
        let spec = DistSpec::block2();
        let mut u = DistArray2::<f64>::new(proc.rank(), &grid, &spec, [n + 1, n + 1], [1, 1]);
        let f = DistArray2::from_fn(
            proc.rank(),
            &grid,
            &spec,
            [n + 1, n + 1],
            [0, 0],
            |[i, j]| {
                // A point source in the middle.
                if i == n / 2 && j == n / 2 {
                    -0.25
                } else {
                    0.0
                }
            },
        );
        let mut ctx = Ctx::new(proc, grid);
        let history = jacobi_run(&mut ctx, &mut u, &f, 50);
        let center = u.try_get([n / 2, n / 2]);
        (history, center)
    });

    let (history, _) = &run.results[0];
    println!("Jacobi on a {n}x{n} grid over 2x2 simulated processors");
    println!(
        "update norm: first {:.3e}, last {:.3e} (50 sweeps)",
        history[0],
        history[history.len() - 1]
    );
    let center = run
        .results
        .iter()
        .find_map(|(_, c)| *c)
        .expect("someone owns the center");
    println!("u(center) = {center:.6}");
    println!("\n--- virtual machine report ---\n{}", run.report);
}
