//! Strong scaling of the substructured tridiagonal solver (§3) across
//! machine sizes and communication-cost regimes.
//!
//! ```sh
//! cargo run --release --example tridiagonal_scaling
//! ```

fn main() {
    println!("{}", kali_bench_stub::run());
}

// The experiment lives in kali-bench; the example re-runs the same table
// with a smaller sweep so it finishes quickly in debug builds.
mod kali_bench_stub {
    use kali::kernels::tri_dist::tri_dist;
    use kali::kernels::tridiag::{thomas, thomas_flops};
    use kali::kernels::TriDiag;
    use kali::prelude::*;

    /// Machine for this example: iPSC/2-era costs on the virtual-time
    /// simulator by default; `KALI_BACKEND=threads` runs the same program
    /// on real threads (wall-clock timing, zero virtual time).
    fn machine_cfg(p: usize) -> MachineConfig {
        Machine::build(
            BackendKind::from_env(),
            Topology::FullyConnected,
            CostModel::ipsc2(),
        )
        .procs(p)
        .config()
    }

    pub fn run() -> String {
        let mut out = String::from("substructured tridiagonal solver: virtual time\n\n");
        out.push_str(&format!(
            "{:>8} {:>12} {:>12} {:>12} {:>10}\n",
            "n", "p=1", "p=4", "p=16", "speedup@16"
        ));
        for n in [1usize << 10, 1 << 14, 1 << 16] {
            let mut times = Vec::new();
            for p in [1usize, 4, 16] {
                let sys = TriDiag::random_dd(n, 5);
                let f = sys.apply(&vec![1.0; n]);
                let run = Machine::run(machine_cfg(p), move |proc| {
                    if proc.nprocs() == 1 {
                        proc.compute(thomas_flops(n));
                        thomas(&sys.b, &sys.a, &sys.c, &f);
                        return;
                    }
                    let grid = ProcGrid::new_1d(proc.nprocs());
                    let dist = Dist1::block(n, proc.nprocs());
                    let me = proc.rank();
                    let (lo, hi) = (dist.lower(me).unwrap(), dist.upper(me).unwrap() + 1);
                    let mut ctx = Ctx::new(proc, grid);
                    tri_dist(
                        &mut ctx,
                        n,
                        &sys.b[lo..hi],
                        &sys.a[lo..hi],
                        &sys.c[lo..hi],
                        &f[lo..hi],
                    );
                });
                times.push(run.report.elapsed);
            }
            out.push_str(&format!(
                "{:>8} {:>10.3e} s {:>10.3e} s {:>10.3e} s {:>9.2}x\n",
                n,
                times[0],
                times[1],
                times[2],
                times[0] / times[2]
            ));
        }
        out.push_str(
            "\nThe solver does ~2x the flops of Thomas plus log2(p) message\n\
             rounds, so it pays off once n is large relative to the message\n\
             start-up cost (the regime trade-off of paper §3).\n",
        );
        out
    }
}
