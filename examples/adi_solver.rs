//! ADI solver (Listings 7–8): solve an anisotropic model problem, showing
//! residual history and the pipelined solver's advantage.
//!
//! ```sh
//! cargo run --example adi_solver
//! ```

use kali::prelude::*;
use kali::solvers::adi::{adi_run, suggested_rho};
use kali::solvers::seq::{apply2, Grid2};

/// Machine for this example: iPSC/2-era costs on the virtual-time
/// simulator by default; `KALI_BACKEND=threads` runs the same program
/// on real threads (wall-clock timing, zero virtual time).
fn machine_cfg(p: usize) -> MachineConfig {
    Machine::build(
        BackendKind::from_env(),
        Topology::FullyConnected,
        CostModel::ipsc2(),
    )
    .procs(p)
    .config()
}

fn main() {
    let n = 64usize;
    let pde = Pde::anisotropic(4.0, 1.0, 0.0);
    let us = Grid2::random_interior(n, n, 42);
    let f = apply2(&pde, &us);
    let rho = suggested_rho(&pde, n, n);
    let iters = 12;

    let mut reports = Vec::new();
    for pipelined in [false, true] {
        let f = f.clone();
        let run = Machine::run(machine_cfg(4), move |proc| {
            let grid = ProcGrid::new_2d(2, 2);
            let spec = DistSpec::block2();
            let mut u = DistArray2::<f64>::new(proc.rank(), &grid, &spec, [n + 1, n + 1], [1, 1]);
            let farr = DistArray2::from_fn(
                proc.rank(),
                &grid,
                &spec,
                [n + 1, n + 1],
                [0, 0],
                |[i, j]| f.at(i, j),
            );
            let mut ctx = Ctx::new(proc, grid);
            adi_run(&mut ctx, &pde, rho, &mut u, &farr, iters, pipelined)
        });
        reports.push((pipelined, run));
    }

    println!("ADI on {n}x{n}, 2x2 processors, rho = {rho:.1}\n");
    println!("residual 2-norm per iteration (pipelined run):");
    for (it, r) in reports[1].1.results[0].iter().enumerate() {
        println!("  iter {:>2}: {r:.4e}", it + 1);
    }
    println!();
    for (pipelined, run) in &reports {
        println!(
            "{:<26} virtual time {:.4e} s, {} msgs",
            if *pipelined {
                "pipelined (Listing 8)"
            } else {
                "line-at-a-time (Listing 7)"
            },
            run.report.elapsed,
            run.report.total_msgs
        );
    }
    let speedup = reports[0].1.report.elapsed / reports[1].1.report.elapsed;
    println!("\npipelining speedup: {speedup:.2}x");
}
