//! Differential tests between the two execution backends.
//!
//! The virtual-time simulator and the real-threads backend share every
//! line of protocol code — topology routing, posting-order ticket
//! matching, collectives, the split-phase doall engine and its
//! optimistic replay — and differ only in what the clock means. So for
//! any program the two backends must produce *bitwise identical*
//! results and identical traffic/scheduling counters, and the threads
//! backend must be bitwise deterministic across repeated runs however
//! the OS schedules its workers.

use std::time::Duration;

use kali::lang::{listing, run_source, HostValue, LangRun};
use kali::prelude::*;
use kali::solvers::adi::{adi_run, suggested_rho};
use kali::solvers::mg2::mg2_vcycle;
use kali::solvers::seq;

fn cfg_on(backend: BackendKind, p: usize) -> MachineConfig {
    Machine::build(backend, Topology::FullyConnected, CostModel::ipsc2())
        .procs(p)
        .watchdog(Duration::from_secs(60))
        .config()
}

/// The counters that must not depend on the backend: traffic, value
/// exchange, and every inspector-executor scheduling decision.
fn protocol_counters(r: &RunReport) -> [u64; 7] {
    [
        r.total_msgs,
        r.total_words,
        r.total_exchange_words,
        r.total_inspector_runs,
        r.total_schedule_replays,
        r.total_optimistic_hits,
        r.total_rollbacks,
    ]
}

fn assert_bitwise(tag: &str, a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len(), "{tag}: length mismatch");
    for (k, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{tag} flat {k}: {x} vs {y}");
    }
}

/// Run one of the four shipped KF1 listings with fixed inputs on the
/// given backend.
fn run_kf1(backend: BackendKind, which: &str) -> LangRun {
    let src = listing(which).expect("shipped listing");
    match which {
        "jacobi" => {
            let np = 16i64;
            let w = (np + 1) as usize;
            let f: Vec<f64> = (0..w * w)
                .map(|k| {
                    let (i, j) = (k / w, k % w);
                    if i == 0 || i == w - 1 || j == 0 || j == w - 1 {
                        0.0
                    } else {
                        ((i * 5 + j) % 7) as f64 / 70.0
                    }
                })
                .collect();
            run_source(
                cfg_on(backend, 4),
                src,
                "jacobi",
                &[2, 2],
                &[
                    HostValue::Array {
                        data: vec![0.0; w * w],
                        bounds: vec![(0, np), (0, np)],
                    },
                    HostValue::Array {
                        data: f,
                        bounds: vec![(0, np), (0, np)],
                    },
                    HostValue::Int(np),
                    HostValue::Int(6),
                ],
            )
        }
        "shift" => {
            let n = 16usize;
            run_source(
                cfg_on(backend, 4),
                src,
                "shift",
                &[4],
                &[
                    HostValue::Array {
                        data: (1..=n).map(|i| i as f64).collect(),
                        bounds: vec![(1, n as i64)],
                    },
                    HostValue::Int(n as i64),
                ],
            )
        }
        "tri" => {
            let n = 64usize;
            let sys = kali::kernels::TriDiag::random_dd(n, 1);
            let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.2).sin()).collect();
            let f = sys.apply(&x_true);
            run_source(
                cfg_on(backend, 4),
                src,
                "tri",
                &[4],
                &[
                    HostValue::Array {
                        data: vec![0.0; n],
                        bounds: vec![(1, n as i64)],
                    },
                    HostValue::Array {
                        data: f,
                        bounds: vec![(1, n as i64)],
                    },
                    HostValue::Array {
                        data: sys.b.clone(),
                        bounds: vec![(1, n as i64)],
                    },
                    HostValue::Array {
                        data: sys.a.clone(),
                        bounds: vec![(1, n as i64)],
                    },
                    HostValue::Array {
                        data: sys.c.clone(),
                        bounds: vec![(1, n as i64)],
                    },
                    HostValue::Int(n as i64),
                ],
            )
        }
        "adi" => {
            let np = 12usize;
            let w = np + 1;
            let pde = Pde::poisson();
            let us = seq::Grid2::random_interior(np, np, 7);
            let f = seq::apply2(&pde, &us);
            let rho = suggested_rho(&pde, np, np);
            let fdata: Vec<f64> = (0..w * w).map(|k| f.at(k / w, k % w)).collect();
            run_source(
                cfg_on(backend, 4),
                src,
                "adi",
                &[2, 2],
                &[
                    HostValue::Array {
                        data: vec![0.0; w * w],
                        bounds: vec![(0, np as i64), (0, np as i64)],
                    },
                    HostValue::Array {
                        data: fdata,
                        bounds: vec![(0, np as i64), (0, np as i64)],
                    },
                    HostValue::Array {
                        data: vec![0.0; w * w],
                        bounds: vec![(0, np as i64), (0, np as i64)],
                    },
                    HostValue::Int(np as i64),
                    HostValue::Real(rho),
                    HostValue::Int(3),
                    HostValue::Real(1.0),
                    HostValue::Real(1.0),
                ],
            )
        }
        other => panic!("unknown listing {other}"),
    }
    .expect("listing runs")
}

const KF1: [&str; 4] = ["jacobi", "tri", "shift", "adi"];

#[test]
fn kf1_listings_agree_bitwise_across_backends() {
    for which in KF1 {
        let sim = run_kf1(BackendKind::Sim, which);
        let thr = run_kf1(BackendKind::Threads, which);
        for ((name, a), (_, b)) in sim.arrays.iter().zip(&thr.arrays) {
            assert_bitwise(&format!("{which}:{name}"), a, b);
        }
        assert_eq!(
            protocol_counters(&sim.report),
            protocol_counters(&thr.report),
            "{which}: protocol counters diverge across backends"
        );
        // The threads backend spends no virtual time but real wall time.
        assert_eq!(thr.report.backend, BackendKind::Threads);
        assert_eq!(thr.report.elapsed, 0.0, "{which}");
        assert!(thr.report.wall_seconds > 0.0, "{which}");
        assert!(sim.report.elapsed > 0.0, "{which}");
    }
}

/// Compiled jacobi through the stencil plan on a 2x2 grid.
fn compiled_jacobi(backend: BackendKind) -> (Vec<f64>, RunReport) {
    let n = 16usize;
    let run = Machine::run(cfg_on(backend, 4), move |proc| {
        let grid = ProcGrid::new_2d(2, 2);
        let spec = DistSpec::block2();
        let mut u = DistArray2::<f64>::new(proc.rank(), &grid, &spec, [n + 1, n + 1], [1, 1]);
        let farr = DistArray2::from_fn(
            proc.rank(),
            &grid,
            &spec,
            [n + 1, n + 1],
            [0, 0],
            |[i, j]| ((3 * i + j) % 9) as f64 / 40.0,
        );
        let mut ctx = Ctx::new(proc, grid);
        for _ in 0..6 {
            kali::solvers::jacobi::jacobi_step(&mut ctx, &mut u, &farr);
        }
        u.gather_to_root(ctx.proc())
    });
    (run.results[0].clone().unwrap(), run.report)
}

/// Compiled pipelined ADI on a 4x2 grid.
fn compiled_adi(backend: BackendKind) -> (Vec<f64>, RunReport) {
    let (nx, ny) = (24usize, 16usize);
    let pde = Pde::poisson();
    let us = seq::Grid2::random_interior(nx, ny, 31);
    let f = seq::apply2(&pde, &us);
    let rho = suggested_rho(&pde, nx, ny);
    let run = Machine::run(cfg_on(backend, 8), move |proc| {
        let grid = ProcGrid::new_2d(4, 2);
        let spec = DistSpec::block2();
        let mut u = DistArray2::<f64>::new(proc.rank(), &grid, &spec, [nx + 1, ny + 1], [1, 1]);
        let farr = DistArray2::from_fn(
            proc.rank(),
            &grid,
            &spec,
            [nx + 1, ny + 1],
            [0, 0],
            |[i, j]| f.at(i, j),
        );
        let mut ctx = Ctx::new(proc, grid);
        adi_run(&mut ctx, &pde, rho, &mut u, &farr, 3, true);
        u.gather_to_root(ctx.proc())
    });
    (run.results[0].clone().unwrap(), run.report)
}

/// Compiled mg2 V-cycles on an eight-processor line.
fn compiled_mg2(backend: BackendKind) -> (Vec<f64>, RunReport) {
    let (nx, ny) = (16usize, 32usize);
    let pde = Pde::anisotropic(3.0, 1.0, 0.0);
    let us = seq::Grid2::random_interior(nx, ny, 17);
    let f = seq::apply2(&pde, &us);
    let run = Machine::run(cfg_on(backend, 8), move |proc| {
        let grid = ProcGrid::new_1d(8);
        let spec = DistSpec::local_block();
        let mut u = DistArray2::<f64>::new(proc.rank(), &grid, &spec, [nx + 1, ny + 1], [0, 1]);
        let farr = DistArray2::from_fn(
            proc.rank(),
            &grid,
            &spec,
            [nx + 1, ny + 1],
            [0, 1],
            |[i, j]| f.at(i, j),
        );
        let mut ctx = Ctx::new(proc, grid);
        for _ in 0..3 {
            mg2_vcycle(&mut ctx, &pde, &mut u, &farr);
        }
        u.gather_to_root(ctx.proc())
    });
    (run.results[0].clone().unwrap(), run.report)
}

#[test]
fn compiled_solvers_agree_bitwise_across_backends() {
    let cases: [(&str, fn(BackendKind) -> (Vec<f64>, RunReport)); 3] = [
        ("jacobi", compiled_jacobi),
        ("adi", compiled_adi),
        ("mg2", compiled_mg2),
    ];
    for (tag, go) in cases {
        let (sim_x, sim_r) = go(BackendKind::Sim);
        let (thr_x, thr_r) = go(BackendKind::Threads);
        assert_bitwise(tag, &sim_x, &thr_x);
        assert_eq!(
            protocol_counters(&sim_r),
            protocol_counters(&thr_r),
            "{tag}: protocol counters diverge across backends"
        );
        assert_eq!(thr_r.elapsed, 0.0, "{tag}");
        assert!(thr_r.wall_seconds > 0.0, "{tag}");
    }
}

#[test]
fn threads_backend_is_bitwise_deterministic_over_repeated_runs() {
    // Ten runs per listing: however the OS interleaves the worker
    // threads, the posting-order ticket matching must serve receives in
    // the same order every time, so results AND the exchange/vote
    // counters must be identical run over run.
    for which in KF1 {
        let reference = run_kf1(BackendKind::Threads, which);
        for rep in 1..10 {
            let again = run_kf1(BackendKind::Threads, which);
            for ((name, a), (_, b)) in reference.arrays.iter().zip(&again.arrays) {
                assert_bitwise(&format!("{which}:{name} rep {rep}"), a, b);
            }
            assert_eq!(
                protocol_counters(&reference.report),
                protocol_counters(&again.report),
                "{which} rep {rep}: counters drift across runs"
            );
        }
    }
}
