//! Differential suite for the element-generic compiled path: `f32`
//! grids answer within tolerance of `f64` while moving exactly half the
//! face-exchange words; the row-form (slice) interiors are bitwise
//! identical to the per-point baseline for Jacobi, ADI and mg2 on both
//! backends; random `f32` stencil loops replay warm with zero
//! rollbacks; optimistic vote headers flow only among the *active*
//! team (ranks whose owned block is non-empty); and debug builds fence
//! reads that stray outside the declared `Ghosts` skirt.

use std::time::Duration;

use proptest::prelude::*;

use kali::machine::SimRun;
use kali::prelude::*;
use kali::solvers::adi::{adi_run, suggested_rho};
use kali::solvers::jacobi::jacobi_step;
use kali::solvers::mg2::mg2_vcycle;
use kali::solvers::seq;

fn cfg_on(backend: BackendKind, p: usize) -> MachineConfig {
    Machine::build(backend, Topology::FullyConnected, CostModel::unit())
        .procs(p)
        .watchdog(Duration::from_secs(60))
        .config()
}

fn cfg(p: usize) -> MachineConfig {
    cfg_on(BackendKind::from_env(), p)
}

/// Bitwise comparison through `to_f64` (exact for every `Elem` type —
/// `f32 → f64` is value-preserving, so equal bits there means equal
/// `f32` bits too).
fn assert_bitwise<T: Real>(a: &[T], b: &[T], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (k, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_f64().to_bits(),
            y.to_f64().to_bits(),
            "{what} flat {k}: {:?} vs {:?}",
            x,
            y
        );
    }
}

/// Jacobi sweeps on a row-distributed grid, generic over the element
/// type; returns the root-gathered field and the run report. `m + 1`
/// columns is the face-exchange payload length, so an even `m + 1`
/// makes the `f32` wire accounting exact (two elements per word, no
/// odd tail).
fn jacobi_elem<T: Real>(
    backend: BackendKind,
    policy: ExecPolicy,
    n: usize,
    m: usize,
    sweeps: usize,
) -> (Vec<T>, RunReport) {
    let run = Machine::run(cfg_on(backend, 4), move |proc| {
        let grid = ProcGrid::new_1d(4);
        let spec = DistSpec::block_local();
        let mut u = DistArray2::from_fn(
            proc.rank(),
            &grid,
            &spec,
            [n + 1, m + 1],
            [1, 0],
            |[i, j]| {
                if i == 0 || i == n || j == 0 || j == m {
                    T::zero()
                } else {
                    T::from_f64(((i * 13 + j * 7) % 11) as f64 / 22.0)
                }
            },
        );
        let farr = DistArray2::from_fn(
            proc.rank(),
            &grid,
            &spec,
            [n + 1, m + 1],
            [0, 0],
            |[i, j]| T::from_f64(((i + 2 * j) % 5) as f64 / 50.0),
        );
        let mut ctx = Ctx::with_policy(proc, grid, policy);
        for _ in 0..sweeps {
            jacobi_step(&mut ctx, &mut u, &farr);
        }
        u.gather_to_root(ctx.proc())
    });
    (run.results[0].clone().unwrap(), run.report)
}

/// Pipelined ADI on a 2×2 grid; returns (residual history, gathered
/// field) and the report.
fn adi_under(backend: BackendKind, policy: ExecPolicy) -> (Vec<f64>, Vec<f64>, RunReport) {
    let (nx, ny) = (16usize, 16usize);
    let pde = Pde::poisson();
    let us = seq::Grid2::random_interior(nx, ny, 7);
    let f = seq::apply2(&pde, &us);
    let rho = suggested_rho(&pde, nx, ny);
    let run = Machine::run(cfg_on(backend, 4), move |proc| {
        let grid = ProcGrid::new_2d(2, 2);
        let spec = DistSpec::block2();
        let mut u = DistArray2::<f64>::new(proc.rank(), &grid, &spec, [nx + 1, ny + 1], [1, 1]);
        let farr = DistArray2::from_fn(
            proc.rank(),
            &grid,
            &spec,
            [nx + 1, ny + 1],
            [0, 0],
            |[i, j]| f.at(i, j),
        );
        let mut ctx = Ctx::with_policy(proc, grid, policy);
        let hist = adi_run(&mut ctx, &pde, rho, &mut u, &farr, 3, true);
        (hist, u.gather_to_root(ctx.proc()))
    });
    let (hist, field) = &run.results[0];
    (hist.clone(), field.clone().unwrap(), run.report)
}

/// Two mg2 V-cycles on a 1-D processor array; returns the gathered
/// field and the report.
fn mg2_under(backend: BackendKind, policy: ExecPolicy) -> (Vec<f64>, RunReport) {
    let (nx, ny) = (8usize, 16usize);
    let pde = Pde::poisson();
    let us = seq::Grid2::random_interior(nx, ny, 5);
    let f = seq::apply2(&pde, &us);
    let run = Machine::run(cfg_on(backend, 4), move |proc| {
        let grid = ProcGrid::new_1d(4);
        let spec = DistSpec::local_block();
        let mut u = DistArray2::<f64>::new(proc.rank(), &grid, &spec, [nx + 1, ny + 1], [0, 1]);
        let farr = DistArray2::from_fn(
            proc.rank(),
            &grid,
            &spec,
            [nx + 1, ny + 1],
            [0, 1],
            |[i, j]| f.at(i, j),
        );
        let mut ctx = Ctx::with_policy(proc, grid, policy);
        for _ in 0..2 {
            mg2_vcycle(&mut ctx, &pde, &mut u, &farr);
        }
        u.gather_to_root(ctx.proc())
    });
    (run.results[0].clone().unwrap(), run.report)
}

#[test]
fn f32_results_track_f64_within_tolerance() {
    let backend = BackendKind::from_env();
    let (a64, _) = jacobi_elem::<f64>(backend, ExecPolicy::default(), 16, 15, 10);
    let (a32, _) = jacobi_elem::<f32>(backend, ExecPolicy::default(), 16, 15, 10);
    assert_eq!(a64.len(), a32.len());
    for (k, (x, y)) in a64.iter().zip(&a32).enumerate() {
        assert!((x - *y as f64).abs() < 1e-4, "flat {k}: f64 {x} vs f32 {y}");
    }
}

#[test]
fn f32_face_exchange_words_are_exactly_half_of_f64() {
    // Pessimistic split: pure payload traffic (no vote headers), and
    // every face message is one 16-element row — even, so f32 packs
    // two-per-word with no tail and the halving is *exact*.
    let backend = BackendKind::from_env();
    let (_, r64) = jacobi_elem::<f64>(backend, ExecPolicy::pessimistic(), 16, 15, 4);
    let (_, r32) = jacobi_elem::<f32>(backend, ExecPolicy::pessimistic(), 16, 15, 4);
    assert!(r64.total_exchange_words > 0, "the sweeps must exchange");
    assert_eq!(
        r64.total_exchange_words,
        2 * r32.total_exchange_words,
        "f32 face exchanges must move exactly half the f64 words"
    );
}

#[test]
fn row_and_point_forms_are_bitwise_identical_for_jacobi_adi_mg2() {
    for backend in [BackendKind::Sim, BackendKind::Threads] {
        let rows = ExecPolicy::default();
        let point = ExecPolicy::default().point_form();

        let (ur, rr) = jacobi_elem::<f64>(backend, rows, 16, 15, 5);
        let (up, rp) = jacobi_elem::<f64>(backend, point, 16, 15, 5);
        assert_bitwise(&ur, &up, "jacobi row-vs-point");
        assert_eq!(rr.total_flops, rp.total_flops, "jacobi flop parity");
        assert_eq!(rr.total_exchange_words, rp.total_exchange_words);

        let (fr, frr) = jacobi_elem::<f32>(backend, rows, 16, 15, 5);
        let (fp, _) = jacobi_elem::<f32>(backend, point, 16, 15, 5);
        assert_bitwise(&fr, &fp, "f32 jacobi row-vs-point");
        assert_eq!(rr.total_flops, frr.total_flops, "flops are element-blind");

        let (hist_r, u_r, ar) = adi_under(backend, rows);
        let (hist_p, u_p, ap) = adi_under(backend, point);
        assert_bitwise(&u_r, &u_p, "adi row-vs-point field");
        assert_bitwise(&hist_r, &hist_p, "adi row-vs-point history");
        assert_eq!(ar.total_flops, ap.total_flops, "adi flop parity");

        let (mr, mrr) = mg2_under(backend, rows);
        let (mp, mpr) = mg2_under(backend, point);
        assert_bitwise(&mr, &mp, "mg2 row-vs-point");
        assert_eq!(mrr.total_flops, mpr.total_flops, "mg2 flop parity");
    }
}

#[test]
fn sim_and_threads_agree_bitwise_per_element_type() {
    let policy = ExecPolicy::default();
    let (s64, _) = jacobi_elem::<f64>(BackendKind::Sim, policy, 16, 15, 5);
    let (t64, _) = jacobi_elem::<f64>(BackendKind::Threads, policy, 16, 15, 5);
    assert_bitwise(&s64, &t64, "f64 sim-vs-threads");
    let (s32, _) = jacobi_elem::<f32>(BackendKind::Sim, policy, 16, 15, 5);
    let (t32, _) = jacobi_elem::<f32>(BackendKind::Threads, policy, 16, 15, 5);
    assert_bitwise(&s32, &t32, "f32 sim-vs-threads");
}

#[test]
fn vote_headers_flow_only_among_the_active_team() {
    // 3 usable columns over p ranks: with p = 4 the last rank owns an
    // empty block, so the active team is {0, 1, 2} and *all* halo
    // traffic — cold exchanges and warm piggybacked votes — must match
    // a 3-processor machine running the identical grid. Before
    // active-team gating the idle rank paid a bare vote header per
    // warm trip.
    let go = |p: usize| -> SimRun<(u64, u64)> {
        Machine::run(cfg(p), move |proc| {
            let grid = ProcGrid::new_1d(proc.nprocs());
            let spec = DistSpec::local_block();
            let n = 8usize;
            let mut u =
                DistArray2::from_fn(proc.rank(), &grid, &spec, [n + 1, 3], [0, 1], |[i, j]| {
                    ((i * 5 + j * 3) % 7) as f64 / 7.0
                });
            let farr =
                DistArray2::from_fn(proc.rank(), &grid, &spec, [n + 1, 3], [0, 0], |[i, j]| {
                    ((i + j) % 3) as f64 / 30.0
                });
            let mut ctx = Ctx::new(proc, grid);
            for _ in 0..5 {
                jacobi_step(&mut ctx, &mut u, &farr);
            }
            (
                ctx.proc().stats().rollbacks,
                ctx.proc().stats().optimistic_hits,
            )
        })
    };
    let with_idle_rank = go(4);
    let exact_team = go(3);
    assert_eq!(
        with_idle_rank.report.total_msgs, exact_team.report.total_msgs,
        "the empty-block rank must be silent on the wire"
    );
    assert_eq!(
        with_idle_rank.report.total_words, exact_team.report.total_words,
        "not even a bare vote header may leave the idle rank"
    );
    for (rank, (rollbacks, hits)) in with_idle_rank.results.iter().enumerate() {
        assert_eq!(*rollbacks, 0, "rank {rank}: warm loop must not roll back");
        assert!(
            *hits > 0,
            "rank {rank}: every member — active or gated — replays warm"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random 5-point f32 stencils (random weights, shapes, sweep
    /// counts) under the default optimistic policy: the loop geometry
    /// is stable, so every warm trip must be a piggybacked-vote replay
    /// with zero rollbacks.
    #[test]
    fn random_f32_stencils_replay_with_zero_rollbacks(
        n in 6usize..20,
        m in 6usize..20,
        seed in 0u64..1000,
        sweeps in 2usize..6,
    ) {
        let run = Machine::run(cfg(4), move |proc| {
            let grid = ProcGrid::new_2d(2, 2);
            let spec = DistSpec::block2();
            let mut u = DistArray2::from_fn(
                proc.rank(),
                &grid,
                &spec,
                [n + 1, m + 1],
                [1, 1],
                |[i, j]| ((i * 31 + j * 17 + seed as usize) % 13) as f32 / 13.0,
            );
            let w = |k: u64| ((seed * 7 + k) % 9) as f32 / 36.0;
            let (wa, wb, wc, wd) = (w(1), w(2), w(3), w(4));
            let mut ctx = Ctx::new(proc, grid);
            for _ in 0..sweeps {
                ctx.plan()
                    .reads(&mut u, Ghosts::faces(1))
                    .update2(1..n, 1..m, 5.0, |old, i, j| {
                        wa * old.at(i + 1, j)
                            + wb * old.at(i - 1, j)
                            + wc * old.at(i, j + 1)
                            + wd * old.at(i, j - 1)
                    });
            }
            (ctx.proc().stats().rollbacks, ctx.proc().stats().optimistic_hits)
        });
        prop_assert_eq!(run.report.total_rollbacks, 0);
        prop_assert_eq!(
            run.report.total_optimistic_hits,
            4 * (sweeps as u64 - 1),
            "every warm sweep on every rank must replay"
        );
        for (rollbacks, _) in &run.results {
            prop_assert_eq!(*rollbacks, 0);
        }
    }
}

/// Debug builds arm a read fence over the declared skirt: a depth-2
/// ghost read under a width-1 plan must panic even though the ghost
/// storage exists.
#[cfg(debug_assertions)]
#[test]
#[should_panic(expected = "read fence violation")]
fn read_fence_rejects_reads_beyond_the_declared_width() {
    let _ = Machine::run(cfg(2), |proc| {
        let grid = ProcGrid::new_1d(2);
        let spec = DistSpec::block_local();
        // Two ghost rows allocated, but the plan declares width 1.
        let mut u = DistArray2::<f64>::new(proc.rank(), &grid, &spec, [9, 5], [2, 0]);
        let mut ctx = Ctx::new(proc, grid);
        let [nxp, nyp] = u.extents();
        ctx.plan().reads(&mut u, Ghosts::faces(1)).run2(
            1..nxp - 1,
            1..nyp - 1,
            1.0,
            |_, u, i, j| {
                if i + 2 < nxp && !u.owns([i + 2, j]) {
                    let _ = u.at(i + 2, j); // depth-2 ghost read
                }
            },
        );
    });
}

/// The face-only plan also fences diagonal ghosts: a corner read under
/// `Ghosts::faces` must panic in debug builds.
#[cfg(debug_assertions)]
#[test]
#[should_panic(expected = "corner ghost read")]
fn read_fence_rejects_undeclared_corner_reads() {
    let _ = Machine::run(cfg(4), |proc| {
        let grid = ProcGrid::new_2d(2, 2);
        let spec = DistSpec::block2();
        let mut u = DistArray2::<f64>::new(proc.rank(), &grid, &spec, [17, 17], [1, 1]);
        let mut ctx = Ctx::new(proc, grid);
        ctx.plan()
            .reads(&mut u, Ghosts::faces(1))
            .run2(1..16, 1..16, 1.0, |_, u, i, j| {
                let corner_of_my_block = i == u.owned_range(0).start && j == u.owned_range(1).start;
                if corner_of_my_block && i > 1 && j > 1 {
                    let _ = u.at(i - 1, j - 1); // diagonal ghost, undeclared
                }
            });
    });
}
