//! Cross-crate integration: machine + grid + array + runtime working
//! together on nontrivial communication patterns.

use std::time::Duration;

use kali::prelude::*;

fn cfg(p: usize) -> MachineConfig {
    Machine::build(
        BackendKind::from_env(),
        Topology::FullyConnected,
        CostModel::unit(),
    )
    .procs(p)
    .watchdog(Duration::from_secs(30))
    .config()
}

#[test]
fn teams_from_grid_slices_run_independent_collectives() {
    // Each row of a 2x3 grid sums its own coordinates concurrently.
    let run = Machine::run(cfg(6), |proc| {
        let grid = ProcGrid::new_2d(2, 3);
        let coords = grid.coords_of(proc.rank()).unwrap();
        let row = grid.slice(0, coords[0]);
        let team = row.team();
        collective::allreduce_sum(proc, &team, coords[1] as f64)
    });
    assert!(run.results.iter().all(|&v| v == 3.0));
}

#[test]
fn ring_topology_costs_more_than_crossbar_for_distant_peers() {
    // Hop costs are a virtual-time quantity: pinned to the simulator.
    let go = |topology| {
        let cfg = Machine::build(
            BackendKind::Sim,
            topology,
            CostModel {
                hop: 10.0,
                ..CostModel::unit()
            },
        )
        .procs(8)
        .watchdog(Duration::from_secs(10))
        .config();
        Machine::run(cfg, |proc| {
            let t = kali::machine::tag(kali::machine::NS_USER, 9);
            if proc.rank() == 0 {
                proc.send(4, t, 1.0f64);
            } else if proc.rank() == 4 {
                let _: f64 = proc.recv(0, t);
            }
        })
        .report
        .elapsed
    };
    let crossbar = go(Topology::FullyConnected);
    let ring = go(Topology::Ring);
    assert!(ring > crossbar, "ring {ring} vs crossbar {crossbar}");
}

#[test]
fn redistribute_then_stencil_is_consistent() {
    // Fill under (block, *), transpose to (*, block), run one stencil sweep,
    // gather — must equal the same sweep done sequentially.
    let n = 16usize;
    let run = Machine::run(cfg(4), move |proc| {
        let grid = ProcGrid::new_1d(4);
        let a = DistArray2::from_fn(
            proc.rank(),
            &grid,
            &DistSpec::block_local(),
            [n, n],
            [0, 0],
            |[i, j]| (i * n + j) as f64,
        );
        let mut b = a.redistribute(proc, &DistSpec::local_block(), [0, 1]);
        b.exchange_ghosts(proc);
        let mut c = b.like();
        if b.is_participant() {
            for i in 0..n {
                for j in b.owned_range(1).clone() {
                    if j >= 1 && j + 1 < n {
                        c.put(i, j, b.at(i, j - 1) + b.at(i, j + 1));
                    }
                }
            }
        }
        c.gather_to_root(proc)
    });
    let got = run.results[0].as_ref().unwrap();
    for i in 0..n {
        for j in 1..n - 1 {
            let want = ((i * n + j - 1) + (i * n + j + 1)) as f64;
            assert_eq!(got[i * n + j], want, "({i},{j})");
        }
    }
}

#[test]
fn deterministic_reports_across_runs() {
    let go = || {
        Machine::run(cfg(8), |proc| {
            let grid = ProcGrid::new_1d(8);
            let mut a =
                DistArray1::from_fn(proc.rank(), &grid, &DistSpec::block1(), [64], [1], |[i]| {
                    i as f64
                });
            a.exchange_ghosts(proc);
            let team = grid.team();
            collective::allreduce_sum(proc, &team, 1.0)
        })
    };
    let (a, b) = (go(), go());
    assert_eq!(a.report.elapsed, b.report.elapsed);
    assert_eq!(a.report.total_msgs, b.report.total_msgs);
    assert_eq!(a.report.total_words, b.report.total_words);
    for (x, y) in a.report.procs.iter().zip(&b.report.procs) {
        assert_eq!(x.clock, y.clock);
        assert_eq!(x.stats, y.stats);
    }
}

#[test]
fn utilization_reflects_imbalance() {
    let run = Machine::run(cfg(4), |proc| {
        // Rank 0 does 10x the work.
        proc.compute(if proc.rank() == 0 {
            100_000.0
        } else {
            10_000.0
        });
        let team = Team::all(proc.nprocs());
        collective::barrier(proc, &team);
    });
    if run.report.backend.virtual_time() {
        let u = run.report.utilization();
        assert!(u < 0.5, "utilization should reveal imbalance: {u}");
        assert!(run.report.proc_utilization(0) > 0.9);
    }
}
