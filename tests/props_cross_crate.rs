//! Property-based tests spanning crates: solver correctness and array
//! invariants under randomized shapes, sizes, and distributions.

use std::time::Duration;

use proptest::prelude::*;

use kali::kernels::tri_dist::tri_dist;
use kali::kernels::tridiag::{thomas, TriDiag};
use kali::prelude::*;

fn cfg(p: usize) -> MachineConfig {
    Machine::build(
        BackendKind::from_env(),
        Topology::FullyConnected,
        CostModel::unit(),
    )
    .procs(p)
    .watchdog(Duration::from_secs(60))
    .config()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn tri_dist_matches_thomas_for_random_systems(
        seed in 0u64..1000,
        logp in 0u32..4,
        extra in 0usize..40,
    ) {
        let p = 1usize << logp;
        let n = 2 * p + 2 * extra + 4;
        let sys = TriDiag::random_dd(n, seed);
        let x_true: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.29).sin()).collect();
        let f = sys.apply(&x_true);
        let x_ref = thomas(&sys.b, &sys.a, &sys.c, &f);
        let run = Machine::run(cfg(p), move |proc| {
            let grid = ProcGrid::new_1d(proc.nprocs());
            let dist = Dist1::block(n, proc.nprocs());
            let me = proc.rank();
            let (lo, hi) = (dist.lower(me).unwrap(), dist.upper(me).unwrap() + 1);
            let mut ctx = Ctx::new(proc, grid);
            tri_dist(&mut ctx, n, &sys.b[lo..hi], &sys.a[lo..hi], &sys.c[lo..hi], &f[lo..hi])
        });
        let x: Vec<f64> = run.results.concat();
        for i in 0..n {
            prop_assert!((x[i] - x_ref[i]).abs() < 1e-7, "n={} p={} i={}", n, p, i);
        }
    }

    #[test]
    fn gather_after_redistribute_is_identity(
        n0 in 2usize..12,
        n1 in 2usize..12,
        p in 1usize..5,
        seed in 0u64..100,
    ) {
        let run = Machine::run(cfg(p), move |proc| {
            let grid = ProcGrid::new_1d(p);
            let a = DistArray2::from_fn(
                proc.rank(),
                &grid,
                &DistSpec::block_local(),
                [n0, n1],
                [0, 0],
                |[i, j]| ((seed as usize + 3 * i + 7 * j) % 101) as f64,
            );
            let b = a.redistribute(proc, &DistSpec::local_block(), [0, 0]);
            let c = b.redistribute(proc, &DistSpec::block_local(), [0, 0]);
            (a.gather_to_root(proc), c.gather_to_root(proc))
        });
        let (ga, gc) = &run.results[0];
        prop_assert_eq!(ga.as_ref().unwrap(), gc.as_ref().unwrap());
    }

    #[test]
    fn ghost_exchange_provides_correct_neighbours(
        n in 4usize..40,
        p in 1usize..7,
    ) {
        let run = Machine::run(cfg(p), move |proc| {
            let grid = ProcGrid::new_1d(p);
            let mut a = DistArray1::from_fn(
                proc.rank(),
                &grid,
                &DistSpec::block1(),
                [n],
                [1],
                |[i]| (i * i) as f64,
            );
            a.exchange_ghosts(proc);
            // Verify every visible neighbour value.
            let mut ok = true;
            if a.is_participant() {
                let r = a.owned_range(0);
                if r.start > 0 {
                    ok &= a.at(r.start - 1) == ((r.start - 1) * (r.start - 1)) as f64;
                }
                if r.end < n {
                    ok &= a.at(r.end) == (r.end * r.end) as f64;
                }
            }
            ok
        });
        prop_assert!(run.results.iter().all(|&ok| ok));
    }

    #[test]
    fn collectives_agree_with_scalar_reference(
        p in 1usize..9,
        vals in prop::collection::vec(-100.0f64..100.0, 1..9),
    ) {
        let p = p.min(vals.len());
        let vals2 = vals.clone();
        let run = Machine::run(cfg(p), move |proc| {
            let team = Team::all(proc.nprocs());
            let mine = vals2[proc.rank() % vals2.len()];
            (
                collective::allreduce_sum(proc, &team, mine),
                collective::allreduce_max(proc, &team, mine),
            )
        });
        let expect_sum: f64 = (0..p).map(|r| vals[r % vals.len()]).sum();
        let expect_max = (0..p).map(|r| vals[r % vals.len()]).fold(f64::MIN, f64::max);
        for (s, m) in &run.results {
            prop_assert!((s - expect_sum).abs() < 1e-9);
            prop_assert!((m - expect_max).abs() < 1e-12);
        }
    }
}
