//! Cross-crate integration for the KF1 front end: interpreted listings
//! versus native library implementations on the same virtual machine.

use std::time::Duration;

use kali::lang::{listing, parse, run_source, HostValue};
use kali::prelude::*;
use kali::solvers::jacobi::jacobi_step;

fn cfg(p: usize) -> MachineConfig {
    Machine::build(
        BackendKind::from_env(),
        Topology::FullyConnected,
        CostModel::unit(),
    )
    .procs(p)
    .watchdog(Duration::from_secs(60))
    .config()
}

#[test]
fn all_shipped_listings_parse() {
    for name in ["jacobi", "shift", "tri", "adi"] {
        let src = listing(name).unwrap();
        let prog = parse(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(!prog.subs.is_empty());
        assert!(prog.subs.iter().all(|s| s.parallel));
    }
}

#[test]
fn interpreted_jacobi_equals_native_jacobi_values() {
    let np = 12i64;
    let w = (np + 1) as usize;
    let iters = 8usize;
    let f: Vec<f64> = (0..w * w)
        .map(|k| {
            let (i, j) = (k / w, k % w);
            if i == 0 || i == w - 1 || j == 0 || j == w - 1 {
                0.0
            } else {
                ((3 * i + j) % 9) as f64 / 40.0 - 0.1
            }
        })
        .collect();

    let lang = run_source(
        cfg(4),
        listing("jacobi").unwrap(),
        "jacobi",
        &[2, 2],
        &[
            HostValue::Array {
                data: vec![0.0; w * w],
                bounds: vec![(0, np), (0, np)],
            },
            HostValue::Array {
                data: f.clone(),
                bounds: vec![(0, np), (0, np)],
            },
            HostValue::Int(np),
            HostValue::Int(iters as i64),
        ],
    )
    .unwrap();

    let f2 = f.clone();
    let native = Machine::run(cfg(4), move |proc| {
        let grid = ProcGrid::new_2d(2, 2);
        let spec = DistSpec::block2();
        let n = w - 1;
        let mut u = DistArray2::<f64>::new(proc.rank(), &grid, &spec, [n + 1, n + 1], [1, 1]);
        let farr = DistArray2::from_fn(
            proc.rank(),
            &grid,
            &spec,
            [n + 1, n + 1],
            [0, 0],
            |[i, j]| f2[i * w + j],
        );
        let mut ctx = Ctx::new(proc, grid);
        for _ in 0..iters {
            jacobi_step(&mut ctx, &mut u, &farr);
        }
        u.gather_to_root(ctx.proc())
    });
    let native_x = native.results[0].as_ref().unwrap();
    let lang_x = &lang.arrays[0].1;
    for k in 0..w * w {
        assert!(
            (lang_x[k] - native_x[k]).abs() < 1e-12,
            "flat {k}: interpreted {} vs native {}",
            lang_x[k],
            native_x[k]
        );
    }
    // Runtime resolution stays within a small constant factor of the
    // compiled ghost exchange. With executor reuse the replayed schedule
    // fuses each sweep's exchange into one message per peer, so the
    // interpreter may even undercut the per-array halo protocol — the
    // bound below only guards against pathological inflation.
    if lang.report.backend.virtual_time() {
        let inflation = lang.report.elapsed / native.report.elapsed;
        assert!(
            (0.2..10.0).contains(&inflation),
            "virtual inflation out of range: {inflation}"
        );
    }
    assert!(
        lang.report.total_schedule_replays > lang.report.total_inspector_runs,
        "looped jacobi must replay more schedules than it inspects: {} runs, {} replays",
        lang.report.total_inspector_runs,
        lang.report.total_schedule_replays
    );
}

#[test]
fn parse_errors_carry_line_numbers() {
    let src = "parsub f(a; p)\n  processors p(q)\n  doall 1 i = 1, 4\n  1 continue\nend\n";
    // missing `on` clause
    let err = parse(src).unwrap_err();
    assert_eq!(err.line, 3);
    assert!(err.message.contains("on"), "{err}");
    assert_eq!(err.code, "P004");
}

#[test]
fn sections_and_teams_compose_in_custom_program() {
    // A program that sums each processor's block edge into a pair array —
    // exercises sections, lower/upper, and remote pulls in one doall.
    let src = r#"
parsub edges(a, e, n; procs)
  processors procs(p)
  real a(n) dist (block)
  real e(2*p) dist (block)
  doall 100 ip = 1, p on procs(ip)
    lo = lower(a, procs(ip))
    hi = upper(a, procs(ip))
    e(2*ip-1) = a(lo)
    e(2*ip) = a(hi)
100 continue
  doall 200 ip = 1, p on procs(ip)
    if (ip .gt. 1) then
      e(2*ip-1) = e(2*ip-1) + e(2*ip-2)
    endif
200 continue
end
"#;
    let n = 16usize;
    let run = run_source(
        cfg(4),
        src,
        "edges",
        &[4],
        &[
            HostValue::Array {
                data: (1..=n).map(|i| i as f64).collect(),
                bounds: vec![(1, n as i64)],
            },
            HostValue::Array {
                data: vec![0.0; 8],
                bounds: vec![(1, 8)],
            },
            HostValue::Int(n as i64),
        ],
    )
    .unwrap();
    let e = &run.arrays[1].1;
    // Blocks of 4: edges (1,4), (5,8), (9,12), (13,16).
    assert_eq!(e[0], 1.0);
    assert_eq!(e[1], 4.0);
    // Second doall adds the previous block's upper edge (remote pull).
    assert_eq!(e[2], 5.0 + 4.0);
    assert_eq!(e[4], 9.0 + 8.0);
    assert_eq!(e[6], 13.0 + 12.0);
}

#[test]
fn adi_listing_matches_native_adi() {
    use kali::solvers::adi::{adi_seq_iteration, suggested_rho};
    use kali::solvers::seq::{apply2, Grid2};

    let np = 16usize;
    let w = np + 1;
    let pde = Pde::poisson();
    let us = Grid2::random_interior(np, np, 77);
    let f = apply2(&pde, &us);
    let rho = suggested_rho(&pde, np, np);
    let iters = 3usize;

    // Sequential reference.
    let mut u_seq = Grid2::zeros(np, np);
    for _ in 0..iters {
        adi_seq_iteration(&pde, rho, &mut u_seq, &f);
    }

    // Listing 7 interpreted on a 2x2 processor array.
    let fdata: Vec<f64> = (0..w * w).map(|k| f.at(k / w, k % w)).collect();
    let run = kali::lang::run_source(
        cfg(4),
        kali::lang::listing("adi").unwrap(),
        "adi",
        &[2, 2],
        &[
            HostValue::Array {
                data: vec![0.0; w * w],
                bounds: vec![(0, np as i64), (0, np as i64)],
            },
            HostValue::Array {
                data: fdata,
                bounds: vec![(0, np as i64), (0, np as i64)],
            },
            HostValue::Array {
                data: vec![0.0; w * w],
                bounds: vec![(0, np as i64), (0, np as i64)],
            },
            HostValue::Int(np as i64),
            HostValue::Real(rho),
            HostValue::Int(iters as i64),
            HostValue::Real(1.0),
            HostValue::Real(1.0),
        ],
    )
    .unwrap();
    let x = &run.arrays[0].1;
    let mut max_err = 0.0f64;
    for i in 0..=np {
        for j in 0..=np {
            max_err = max_err.max((x[i * w + j] - u_seq.at(i, j)).abs());
        }
    }
    assert!(
        max_err < 1e-8,
        "interpreted Listing 7 diverges from native ADI: {max_err}"
    );
}
