//! Differential suite for the inspector-executor sparse path: SpMV and
//! full CG are bitwise identical between the sim and real-threads
//! backends; random sparsity patterns replay warm with the exact
//! build/hit/rollback counters; a mid-stream redistribution costs
//! exactly one rollback and one fresh inspection before the stream goes
//! warm again; and the distributed CG answers within tolerance of the
//! sequential reference.

use std::time::Duration;

use proptest::prelude::*;

use kali::prelude::*;
use kali::solvers::cg::{cg, cg_seq, CgResult};
use kali::solvers::spmv::{spmv, spmv_seq};

fn cfg_on(backend: BackendKind, p: usize) -> MachineConfig {
    Machine::build(backend, Topology::FullyConnected, CostModel::unit())
        .procs(p)
        .watchdog(Duration::from_secs(60))
        .config()
}

fn assert_bitwise(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (k, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what} flat {k}: {x} vs {y}");
    }
}

/// SplitMix-style hash, the deterministic randomness for sparsity
/// patterns (replicable on every rank and in the sequential reference).
fn mix(seed: u64, a: u64, b: u64) -> u64 {
    let mut h = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(0x2545_f491_4f6c_dd1d);
    for v in [a, b] {
        h ^= v.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h = h.rotate_left(27).wrapping_mul(0x94d0_49bb_1331_11eb);
    }
    h ^ (h >> 31)
}

/// Random sparsity: every row keeps its diagonal and adds one to three
/// extra columns drawn from the whole index range, so the gather
/// schedule is genuinely data-dependent — no analytic halo covers it.
fn random_row(n: usize, seed: u64) -> impl FnMut(usize) -> Vec<(usize, f64)> {
    move |i| {
        let mut cols = vec![i];
        let extras = 1 + (mix(seed, i as u64, 0) % 3) as usize;
        for k in 1..=extras {
            let c = (mix(seed, i as u64, k as u64) % n as u64) as usize;
            if !cols.contains(&c) {
                cols.push(c);
            }
        }
        cols.into_iter()
            .map(|c| {
                let v = if c == i {
                    (n + 4) as f64
                } else {
                    -1.0 - (mix(seed, c as u64, i as u64) % 7) as f64 / 8.0
                };
                (c, v)
            })
            .collect()
    }
}

fn x_entry(n: usize, seed: u64, i: usize) -> f64 {
    ((i * 13 + seed as usize) % (n + 3)) as f64 * 0.25 - 2.0
}

/// `trips` products of one random matrix on 4 workers; optionally calls
/// [`SparseCsr::distribute`] immediately before trip `redistribute_at`.
/// Returns the root-gathered product and the run report.
fn spmv_stream(
    backend: BackendKind,
    policy: ExecPolicy,
    n: usize,
    seed: u64,
    trips: usize,
    redistribute_at: Option<usize>,
) -> (Vec<f64>, RunReport) {
    let p = 4;
    let run = Machine::run(cfg_on(backend, p), move |proc| {
        let grid = ProcGrid::new_1d(p);
        let mut a = SparseCsr::from_rows(proc.rank(), &grid, n, n, random_row(n, seed));
        let spec = DistSpec::block1();
        let x = DistArray1::from_fn(proc.rank(), &grid, &spec, [n], [0], |[i]| {
            x_entry(n, seed, i)
        });
        let mut y = DistArray1::from_fn(proc.rank(), &grid, &spec, [n], [0], |_| 0.0);
        let mut ctx = Ctx::with_policy(proc, grid, policy);
        for t in 0..trips {
            if redistribute_at == Some(t) {
                a.distribute(ctx.proc());
            }
            spmv(&mut ctx, &a, &x, &mut y);
        }
        y.gather_to_root(ctx.proc())
    });
    let ys = run
        .results
        .iter()
        .find_map(|r| r.clone())
        .expect("root gathered the product");
    (ys, run.report)
}

/// An SPD band (1-D Laplacian at stride 2 plus a diagonal shift) — the
/// CG operator; every block boundary forces remote x fetches.
fn spd_row(n: usize) -> impl FnMut(usize) -> Vec<(usize, f64)> {
    move |i| {
        let mut entries = vec![(i, 5.0)];
        if i >= 2 {
            entries.push((i - 2, -1.0));
        }
        if i + 2 < n {
            entries.push((i + 2, -1.0));
        }
        entries
    }
}

fn b_entry(i: usize) -> f64 {
    (i % 7) as f64 - 2.5
}

/// Full CG solve on 4 workers: returns the root-gathered solution, the
/// solve result, and the run report.
fn cg_solve(backend: BackendKind, n: usize) -> (Vec<f64>, CgResult, RunReport) {
    let p = 4;
    let run = Machine::run(cfg_on(backend, p), move |proc| {
        let grid = ProcGrid::new_1d(p);
        let a = SparseCsr::from_rows(proc.rank(), &grid, n, n, spd_row(n));
        let spec = DistSpec::block1();
        let b = DistArray1::from_fn(proc.rank(), &grid, &spec, [n], [0], |[i]| b_entry(i));
        let mut x = DistArray1::from_fn(proc.rank(), &grid, &spec, [n], [0], |_| 0.0);
        let mut ctx = Ctx::new(proc, grid);
        let res = cg(&mut ctx, &a, &b, &mut x, 100, 1e-10);
        (res, x.gather_to_root(ctx.proc()))
    });
    let (res, xs) = run
        .results
        .iter()
        .find_map(|(res, xs)| xs.clone().map(|v| (*res, v)))
        .expect("root gathered the solution");
    (xs, res, run.report)
}

/// The same SpMV stream on the simulator and on real threads must
/// produce the bitwise-identical product: the protocol (inspection,
/// fused request vectors, piggybacked vote) is backend-agnostic.
#[test]
fn spmv_is_bitwise_identical_across_backends() {
    let (ys, sim_rep) = spmv_stream(BackendKind::Sim, ExecPolicy::default(), 33, 7, 3, None);
    let (yt, thr_rep) = spmv_stream(BackendKind::Threads, ExecPolicy::default(), 33, 7, 3, None);
    assert_bitwise(&ys, &yt, "spmv sim vs threads");
    // Identical protocol counters too, not just identical answers.
    assert_eq!(sim_rep.total_inspector_runs, thr_rep.total_inspector_runs);
    assert_eq!(sim_rep.total_rollbacks, thr_rep.total_rollbacks);
    assert_eq!(sim_rep.total_gather_words, thr_rep.total_gather_words);
}

/// Full CG across backends: same iteration count, bitwise-identical
/// solution and residual.
#[test]
fn cg_is_bitwise_identical_across_backends() {
    let (xs, rs, _) = cg_solve(BackendKind::Sim, 32);
    let (xt, rt, _) = cg_solve(BackendKind::Threads, 32);
    assert_bitwise(&xs, &xt, "cg sim vs threads");
    assert_eq!(rs.iterations, rt.iterations);
    assert_eq!(rs.residual.to_bits(), rt.residual.to_bits());
}

/// A redistribution in the middle of a warm stream costs exactly one
/// rollback and one fresh inspection per worker — and never changes the
/// product.
#[test]
fn redistribute_mid_stream_costs_exactly_one_rollback() {
    let trips = 5;
    let (y, rep) = spmv_stream(
        BackendKind::from_env(),
        ExecPolicy::default(),
        28,
        3,
        trips,
        Some(2),
    );
    let (yref, _) = spmv_stream(
        BackendKind::from_env(),
        ExecPolicy::default(),
        28,
        3,
        trips,
        None,
    );
    assert_bitwise(&y, &yref, "redistribute must not change the product");
    assert_eq!(rep.total_rollbacks, 4, "one rollback per worker, exactly");
    assert_eq!(
        rep.total_inspector_runs,
        2 * 4,
        "cold build + post-rollback rebuild"
    );
    assert_eq!(rep.total_optimistic_hits, 4 * (trips as u64 - 2));
}

/// The distributed CG agrees with the sequential reference and pays the
/// inspector exactly once per worker for the whole solve.
#[test]
fn cg_matches_the_sequential_reference() {
    let n = 32;
    let (xs, res, rep) = cg_solve(BackendKind::from_env(), n);
    assert!(res.converged, "residual {}", res.residual);
    let bs: Vec<f64> = (0..n).map(b_entry).collect();
    let mut xref = vec![0.0; n];
    let rref = cg_seq(n, spd_row(n), &bs, &mut xref, 100, 1e-10);
    assert!(rref.converged);
    for (u, v) in xs.iter().zip(&xref) {
        assert!((u - v).abs() < 1e-8, "{u} vs {v}");
    }
    assert_eq!(rep.total_inspector_runs, 4);
    assert_eq!(rep.total_rollbacks, 0);
    assert!(rep.total_gather_words > 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random sparsity under the default cached-optimistic policy: the
    /// warm replays are bitwise identical to re-inspecting every trip
    /// (and to the sequential reference), with the exact counters —
    /// one build per worker, every later trip a hit, zero rollbacks.
    #[test]
    fn random_sparsity_replays_warm_with_exact_counters(
        n in 12usize..40,
        seed in 0u64..1000,
        trips in 2usize..5,
    ) {
        let (warm, rep) = spmv_stream(
            BackendKind::from_env(),
            ExecPolicy::default(),
            n,
            seed,
            trips,
            None,
        );
        let (fresh, fresh_rep) = spmv_stream(
            BackendKind::from_env(),
            ExecPolicy::pessimistic(),
            n,
            seed,
            trips,
            None,
        );
        for (u, v) in warm.iter().zip(&fresh) {
            prop_assert_eq!(u.to_bits(), v.to_bits(), "replay equivalence");
        }
        prop_assert_eq!(rep.total_inspector_runs, 4);
        prop_assert_eq!(rep.total_optimistic_hits, 4 * (trips as u64 - 1));
        prop_assert_eq!(rep.total_rollbacks, 0);
        prop_assert_eq!(fresh_rep.total_inspector_runs, 4 * trips as u64);
        // And both match the sequential reference bitwise.
        let xs: Vec<f64> = (0..n).map(|i| x_entry(n, seed, i)).collect();
        let yref = spmv_seq(n, random_row(n, seed), &xs);
        for (u, v) in warm.iter().zip(&yref) {
            prop_assert_eq!(u.to_bits(), v.to_bits(), "sequential reference");
        }
    }
}
