//! Property tests for executor reuse: randomly generated small `doall`
//! bodies with affine index reads across random 1D/2D distributions must
//! produce bitwise-identical results whether the inspector runs fresh on
//! every trip or the cached schedule is replayed — and a redistribution
//! between trips must invalidate the cache, never replay a stale schedule.

use std::time::Duration;

use proptest::prelude::*;

use kali::lang::{run_source_with, HostValue, LangRun, RunOptions};
use kali::prelude::*;

fn cfg(p: usize) -> MachineConfig {
    Machine::build(
        BackendKind::from_env(),
        Topology::FullyConnected,
        CostModel::unit(),
    )
    .procs(p)
    .watchdog(Duration::from_secs(60))
    .config()
}

fn run_pair(
    src: &str,
    entry: &str,
    p: usize,
    grid: &[usize],
    args: &[HostValue],
) -> (LangRun, LangRun) {
    let off = run_source_with(
        cfg(p),
        src,
        entry,
        grid,
        args,
        RunOptions {
            schedule_cache: false,
            ..RunOptions::default()
        },
    )
    .unwrap_or_else(|e| panic!("cache off: {e}\n{src}"));
    let on = run_source_with(
        cfg(p),
        src,
        entry,
        grid,
        args,
        RunOptions {
            schedule_cache: true,
            ..RunOptions::default()
        },
    )
    .unwrap_or_else(|e| panic!("cache on: {e}\n{src}"));
    (off, on)
}

fn assert_equivalent(src: &str, off: &LangRun, on: &LangRun) {
    for ((_, a_off), (name, a_on)) in off.arrays.iter().zip(&on.arrays) {
        for (k, (x, y)) in a_off.iter().zip(a_on).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "array {name} diverges at flat {k}: {x} vs {y}\n{src}"
            );
        }
    }
    assert_eq!(
        off.report.total_exchange_words, on.report.total_exchange_words,
        "value traffic must be identical\n{src}"
    );
}

fn dist_name(d: usize) -> &'static str {
    if d == 0 {
        "block"
    } else {
        "cyclic"
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_1d_stencils_replay_equivalently(
        logp in 0u32..3,
        extra in 0usize..12,
        o1 in -2i64..3,
        o2 in -2i64..3,
        dist_a in 0usize..2,
        dist_b in 0usize..2,
        niter in 2i64..5,
        seed in 0u64..1000,
    ) {
        let p = 1usize << logp;
        let n = (4 * p + extra).max(6);
        let lo = 1 + o1.max(o2).max(0);
        let hi = n as i64 - (-o1.min(o2).min(0));
        let src = format!(
            r#"
parsub gen(a, b, n, niter; procs)
  processors procs(p)
  real a(n) dist ({da})
  real b(n) dist ({db})
  do 1000 it = 1, niter
    doall 100 i = {lo}, {hi} on owner(a(i))
      a(i) = 0.5*a(i) + b(i - {o1}) + 0.25*b(i - {o2}) + it
100 continue
1000 continue
end
"#,
            da = dist_name(dist_a),
            db = dist_name(dist_b),
        );
        let b0: Vec<f64> = (0..n).map(|i| ((i as u64 * 37 + seed) % 101) as f64 / 10.0).collect();
        let args = [
            HostValue::Array { data: vec![0.0; n], bounds: vec![(1, n as i64)] },
            HostValue::Array { data: b0, bounds: vec![(1, n as i64)] },
            HostValue::Int(n as i64),
            HostValue::Int(niter),
        ];
        let (off, on) = run_pair(&src, "gen", p, &[p], &args);
        assert_equivalent(&src, &off, &on);
        // The doall re-enters from the do loop with nothing changed
        // (`it` is a key scalar on trip entry... it changes per trip, so
        // the schedule still replays because `it` only feeds values, not
        // subscripts). Fresh inspection exactly once per processor.
        prop_assert_eq!(on.report.total_inspector_runs, p as u64);
        prop_assert_eq!(
            on.report.total_schedule_replays,
            p as u64 * (niter as u64 - 1)
        );
        // Every replay is served by the piggybacked (optimistic) vote.
        prop_assert_eq!(
            on.report.total_optimistic_hits,
            on.report.total_schedule_replays
        );
        prop_assert_eq!(on.report.total_rollbacks, 0);
    }

    #[test]
    fn random_2d_stencils_replay_equivalently(
        p1 in 1usize..3,
        p2 in 1usize..3,
        o1 in -1i64..2,
        o2 in -1i64..2,
        niter in 2i64..4,
        seed in 0u64..1000,
    ) {
        let p = p1 * p2;
        let np = 8i64;
        let w = (np + 1) as usize;
        let lo1 = 1 + o1.max(0);
        let hi1 = np - 1 + o1.min(0);
        let lo2 = 1 + o2.max(0);
        let hi2 = np - 1 + o2.min(0);
        let src = format!(
            r#"
parsub gen2(a, b, np, niter; procs)
  processors procs(p1, p2)
  real a(0:np, 0:np), b(0:np, 0:np) dist (block, block)
  do 1000 it = 1, niter
    doall 100 (i, j) = [{lo1}, {hi1}] * [{lo2}, {hi2}] on owner(a(i, j))
      a(i, j) = 0.5*a(i, j) + b(i - {o1}, j - {o2}) + 0.125*b(i, j)
100 continue
1000 continue
end
"#
        );
        let b0: Vec<f64> = (0..w * w)
            .map(|k| ((k as u64 * 13 + seed) % 97) as f64 / 8.0)
            .collect();
        let args = [
            HostValue::Array { data: vec![0.0; w * w], bounds: vec![(0, np), (0, np)] },
            HostValue::Array { data: b0, bounds: vec![(0, np), (0, np)] },
            HostValue::Int(np),
            HostValue::Int(niter),
        ];
        let (off, on) = run_pair(&src, "gen2", p, &[p1, p2], &args);
        assert_equivalent(&src, &off, &on);
        prop_assert_eq!(on.report.total_inspector_runs, p as u64);
        prop_assert_eq!(
            on.report.total_schedule_replays,
            p as u64 * (niter as u64 - 1)
        );
        prop_assert_eq!(
            on.report.total_optimistic_hits,
            on.report.total_schedule_replays
        );
        prop_assert_eq!(on.report.total_rollbacks, 0);
    }

    #[test]
    fn redistribution_between_trips_invalidates_not_replays(
        logp in 0u32..3,
        extra in 0usize..10,
        o1 in -2i64..3,
        flip_at in 1i64..4,
        start_cyclic in 0usize..2,
        seed in 0u64..1000,
    ) {
        let p = 1usize << logp;
        let n = (4 * p + extra).max(6);
        let niter = 4i64;
        let lo = 1 + o1.max(0);
        let hi = n as i64 - (-o1.min(0));
        let (d0, d1) = if start_cyclic == 1 {
            ("cyclic", "block")
        } else {
            ("block", "cyclic")
        };
        let src = format!(
            r#"
parsub flip(a, b, n, niter; procs)
  processors procs(p)
  real a(n), b(n) dist ({d0})
  do 1000 it = 1, niter
    doall 100 i = {lo}, {hi} on owner(a(i))
      a(i) = a(i) + b(i - {o1}) + 0.5*it
100 continue
    if (it .eq. {flip_at}) then
      distribute b ({d1})
    endif
1000 continue
end
"#
        );
        let b0: Vec<f64> = (0..n).map(|i| ((i as u64 * 53 + seed) % 89) as f64 / 7.0).collect();
        let args = [
            HostValue::Array { data: vec![0.0; n], bounds: vec![(1, n as i64)] },
            HostValue::Array { data: b0, bounds: vec![(1, n as i64)] },
            HostValue::Int(n as i64),
            HostValue::Int(niter),
        ];
        let (off, on) = run_pair(&src, "flip", p, &[p], &args);
        assert_equivalent(&src, &off, &on);
        // The flip forces exactly one extra inspection per processor
        // (generation bump => key miss); everything else replays.
        prop_assert_eq!(on.report.total_inspector_runs, 2 * p as u64);
        prop_assert_eq!(
            on.report.total_schedule_replays,
            p as u64 * (niter as u64 - 2)
        );
        // Under optimistic voting the invalidated trip is exactly one
        // rollback per processor — the headers disagree, the posted
        // payloads are discarded (never a stale read: bitwise equality
        // above is against the cache-off truth), and every surviving
        // replay was served by the piggybacked vote.
        prop_assert_eq!(on.report.total_rollbacks, p as u64);
        prop_assert_eq!(
            on.report.total_optimistic_hits,
            on.report.total_schedule_replays
        );
        for proc in &on.report.procs {
            prop_assert_eq!(proc.stats.rollbacks, 1);
        }
    }
}
