//! Cross-crate integration for the applications: distributed solvers match
//! sequential references, and distribution choices are behaviour-preserving.

use std::time::Duration;

use kali::prelude::*;
use kali::solvers::adi::{adi_run, adi_seq_iteration, suggested_rho};
use kali::solvers::mg2::mg2_vcycle;
use kali::solvers::mg3::mg3_vcycle;
use kali::solvers::seq;

fn cfg(p: usize) -> MachineConfig {
    Machine::build(
        BackendKind::from_env(),
        Topology::FullyConnected,
        CostModel::unit(),
    )
    .procs(p)
    .watchdog(Duration::from_secs(60))
    .config()
}

#[test]
fn adi_pipelined_on_asymmetric_grid_matches_sequential() {
    let (nx, ny) = (24usize, 16usize);
    let pde = Pde::poisson();
    let us = seq::Grid2::random_interior(nx, ny, 31);
    let f = seq::apply2(&pde, &us);
    let rho = suggested_rho(&pde, nx, ny);
    let iters = 4;
    let mut u_seq = seq::Grid2::zeros(nx, ny);
    for _ in 0..iters {
        adi_seq_iteration(&pde, rho, &mut u_seq, &f);
    }
    let f2 = f.clone();
    let run = Machine::run(cfg(8), move |proc| {
        let grid = ProcGrid::new_2d(4, 2);
        let spec = DistSpec::block2();
        let mut u = DistArray2::<f64>::new(proc.rank(), &grid, &spec, [nx + 1, ny + 1], [1, 1]);
        let farr = DistArray2::from_fn(
            proc.rank(),
            &grid,
            &spec,
            [nx + 1, ny + 1],
            [0, 0],
            |[i, j]| f2.at(i, j),
        );
        let mut ctx = Ctx::new(proc, grid);
        adi_run(&mut ctx, &pde, rho, &mut u, &farr, iters, true);
        u.gather_to_root(ctx.proc())
    });
    let got = run.results[0].as_ref().unwrap();
    for i in 0..=nx {
        for j in 0..=ny {
            assert!(
                (got[i * (ny + 1) + j] - u_seq.at(i, j)).abs() < 1e-9,
                "({i},{j})"
            );
        }
    }
}

#[test]
fn mg2_on_eight_processors_matches_sequential_bitwise_tolerance() {
    let (nx, ny) = (16usize, 32usize);
    let pde = Pde::anisotropic(3.0, 1.0, 0.0);
    let us = seq::Grid2::random_interior(nx, ny, 17);
    let f = seq::apply2(&pde, &us);
    let mut u_seq = seq::Grid2::zeros(nx, ny);
    for _ in 0..3 {
        seq::mg2_seq(&pde, &mut u_seq, &f);
    }
    let f2 = f.clone();
    let run = Machine::run(cfg(8), move |proc| {
        let grid = ProcGrid::new_1d(8);
        let spec = DistSpec::local_block();
        let mut u = DistArray2::<f64>::new(proc.rank(), &grid, &spec, [nx + 1, ny + 1], [0, 1]);
        let farr = DistArray2::from_fn(
            proc.rank(),
            &grid,
            &spec,
            [nx + 1, ny + 1],
            [0, 1],
            |[i, j]| f2.at(i, j),
        );
        let mut ctx = Ctx::new(proc, grid);
        for _ in 0..3 {
            mg2_vcycle(&mut ctx, &pde, &mut u, &farr);
        }
        u.gather_to_root(ctx.proc())
    });
    let got = run.results[0].as_ref().unwrap();
    for i in 0..=nx {
        for j in 0..=ny {
            assert!(
                (got[i * (ny + 1) + j] - u_seq.at(i, j)).abs() < 1e-10,
                "({i},{j})"
            );
        }
    }
}

#[test]
fn mg2_execution_policy_is_bitwise_invariant_and_split_is_faster() {
    // The zebra and full-weighting halos run split-phase with cached
    // optimistic replay by default; against the fully blocking
    // rebuild-per-exchange baseline the V-cycle must be *bitwise*
    // identical — the ExecPolicy is an optimization of the virtual
    // timeline, never of the answer — and must actually shorten that
    // timeline on a latency-bound cost model.
    let (nx, ny) = (16usize, 32usize);
    let pde = Pde::anisotropic(3.0, 1.0, 0.0);
    let us = seq::Grid2::random_interior(nx, ny, 23);
    let f = seq::apply2(&pde, &us);
    let go = |policy: ExecPolicy| {
        let f2 = f.clone();
        Machine::run(
            Machine::build(
                BackendKind::from_env(),
                Topology::FullyConnected,
                CostModel::ipsc2(),
            )
            .procs(4)
            .watchdog(Duration::from_secs(60))
            .config(),
            move |proc| {
                let grid = ProcGrid::new_1d(4);
                let spec = DistSpec::local_block();
                let mut u =
                    DistArray2::<f64>::new(proc.rank(), &grid, &spec, [nx + 1, ny + 1], [0, 1]);
                let farr = DistArray2::from_fn(
                    proc.rank(),
                    &grid,
                    &spec,
                    [nx + 1, ny + 1],
                    [0, 1],
                    |[i, j]| f2.at(i, j),
                );
                let mut ctx = Ctx::with_policy(proc, grid, policy);
                for _ in 0..3 {
                    mg2_vcycle(&mut ctx, &pde, &mut u, &farr);
                }
                u.gather_to_root(ctx.proc())
            },
        )
    };
    let blocking = go(ExecPolicy::blocking());
    let split = go(ExecPolicy::default());
    let a = blocking.results[0].as_ref().unwrap();
    let b = split.results[0].as_ref().unwrap();
    for (k, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "flat {k}: {x} vs {y}");
    }
    if split.report.backend.virtual_time() {
        assert!(
            split.report.overlap_hidden_seconds > 0.0,
            "interior zebra lines must overlap the ghost transit"
        );
        assert!(
            split.report.elapsed < blocking.report.elapsed,
            "split-phase mg2 must be faster: {} vs {}",
            split.report.elapsed,
            blocking.report.elapsed
        );
    }
    assert_eq!(
        split.report.total_rollbacks, 0,
        "a stable mg2 loop must never roll a halo replay back"
    );
}

#[test]
fn mg3_converges_to_machine_precision_given_enough_cycles() {
    let n = 8usize;
    let pde = Pde::poisson();
    let us = seq::Grid3::random_interior(n, n, n, 5);
    let f = seq::apply3(&pde, &us);
    let f2 = f.clone();
    let run = Machine::run(cfg(4), move |proc| {
        let grid = ProcGrid::new_2d(2, 2);
        let spec = DistSpec::local_block_block();
        let mut u =
            DistArray3::<f64>::new(proc.rank(), &grid, &spec, [n + 1, n + 1, n + 1], [0, 1, 1]);
        let farr = DistArray3::from_fn(
            proc.rank(),
            &grid,
            &spec,
            [n + 1, n + 1, n + 1],
            [0, 1, 1],
            |[i, j, k]| f2.at(i, j, k),
        );
        let mut ctx = Ctx::new(proc, grid);
        for _ in 0..10 {
            mg3_vcycle(&mut ctx, &pde, &mut u, &farr, 1);
        }
        u.gather_to_root(ctx.proc())
    });
    let got = run.results[0].as_ref().unwrap();
    let mut max_err = 0.0f64;
    for i in 0..=n {
        for j in 0..=n {
            for k in 0..=n {
                max_err =
                    max_err.max((got[(i * (n + 1) + j) * (n + 1) + k] - us.at(i, j, k)).abs());
            }
        }
    }
    assert!(max_err < 1e-9, "mg3 should solve to precision: {max_err}");
}

#[test]
fn jacobi_distribution_choice_does_not_change_semantics() {
    // Claim C3 structurally: same algorithm, three distributions, one answer.
    let n = 16usize;
    let fsrc = |i: usize, j: usize| {
        if i == 0 || i == n || j == 0 || j == n {
            0.0
        } else {
            ((i + 2 * j) % 7) as f64 / 30.0
        }
    };
    let mut outs: Vec<Vec<f64>> = Vec::new();
    let cases: Vec<(DistSpec, ProcGrid, [usize; 2])> = vec![
        (DistSpec::block2(), ProcGrid::new_2d(2, 2), [1, 1]),
        (DistSpec::block_local(), ProcGrid::new_1d(4), [1, 0]),
        (DistSpec::local_block(), ProcGrid::new_1d(4), [0, 1]),
    ];
    for (spec, grid, ghost) in cases {
        let run = Machine::run(cfg(4), move |proc| {
            let mut u = DistArray2::<f64>::new(proc.rank(), &grid, &spec, [n + 1, n + 1], ghost);
            let farr = DistArray2::from_fn(
                proc.rank(),
                &grid,
                &spec,
                [n + 1, n + 1],
                [0, 0],
                |[i, j]| fsrc(i, j),
            );
            let mut ctx = Ctx::new(proc, grid.clone());
            for _ in 0..8 {
                kali::solvers::jacobi::jacobi_step(&mut ctx, &mut u, &farr);
            }
            u.gather_to_root(ctx.proc())
        });
        outs.push(run.results[0].clone().unwrap());
    }
    for k in 0..outs[0].len() {
        assert!((outs[0][k] - outs[1][k]).abs() < 1e-13);
        assert!((outs[0][k] - outs[2][k]).abs() < 1e-13);
    }
}
