//! Cross-crate integration for the §3 kernels: all four tridiagonal
//! solution paths (Thomas, cyclic reduction, substructured distributed,
//! hand message-passing, KF1-interpreted) agree on the same systems.

use std::time::Duration;

use kali::kernels::cyclic_reduction::cyclic_reduction;
use kali::kernels::tri_dist::tri_dist;
use kali::kernels::tridiag::thomas;
use kali::kernels::TriDiag;
use kali::lang::{listing, run_source, HostValue};
use kali::mp::tri_mp;
use kali::prelude::*;

fn cfg(p: usize) -> MachineConfig {
    Machine::build(
        BackendKind::from_env(),
        Topology::FullyConnected,
        CostModel::unit(),
    )
    .procs(p)
    .watchdog(Duration::from_secs(60))
    .config()
}

#[test]
fn five_ways_same_answer() {
    let n = 64usize;
    let p = 4usize;
    let sys = TriDiag::random_dd(n, 2024);
    let x_true: Vec<f64> = (0..n).map(|i| ((i * 5 % 13) as f64) - 6.0).collect();
    let f = sys.apply(&x_true);

    // 1. Thomas.
    let x1 = thomas(&sys.b, &sys.a, &sys.c, &f);
    // 2. Cyclic reduction.
    let x2 = cyclic_reduction(&sys.b, &sys.a, &sys.c, &f);
    // 3. Substructured distributed (runtime API).
    let x3 = {
        let (sys, f) = (sys.clone(), f.clone());
        let run = Machine::run(cfg(p), move |proc| {
            let grid = ProcGrid::new_1d(proc.nprocs());
            let dist = Dist1::block(n, proc.nprocs());
            let me = proc.rank();
            let (lo, hi) = (dist.lower(me).unwrap(), dist.upper(me).unwrap() + 1);
            let mut ctx = Ctx::new(proc, grid);
            tri_dist(
                &mut ctx,
                n,
                &sys.b[lo..hi],
                &sys.a[lo..hi],
                &sys.c[lo..hi],
                &f[lo..hi],
            )
        });
        run.results.concat()
    };
    // 4. Hand message passing.
    let x4 = {
        let (sys, f) = (sys.clone(), f.clone());
        let run = Machine::run(cfg(p), move |proc| {
            let me = proc.rank();
            let pp = proc.nprocs();
            let (lo, hi) = (me * n / pp, (me + 1) * n / pp);
            tri_mp(
                proc,
                n,
                &sys.b[lo..hi],
                &sys.a[lo..hi],
                &sys.c[lo..hi],
                &f[lo..hi],
            )
        });
        run.results.concat()
    };
    // 5. The KF1 listing, interpreted.
    let x5 = {
        let run = run_source(
            cfg(p),
            listing("tri").unwrap(),
            "tri",
            &[p],
            &[
                HostValue::Array {
                    data: vec![0.0; n],
                    bounds: vec![(1, n as i64)],
                },
                HostValue::Array {
                    data: f.clone(),
                    bounds: vec![(1, n as i64)],
                },
                HostValue::Array {
                    data: sys.b.clone(),
                    bounds: vec![(1, n as i64)],
                },
                HostValue::Array {
                    data: sys.a.clone(),
                    bounds: vec![(1, n as i64)],
                },
                HostValue::Array {
                    data: sys.c.clone(),
                    bounds: vec![(1, n as i64)],
                },
                HostValue::Int(n as i64),
            ],
        )
        .unwrap();
        run.arrays[0].1.clone()
    };

    for i in 0..n {
        for (k, x) in [&x1, &x2, &x3, &x4, &x5].iter().enumerate() {
            assert!(
                (x[i] - x_true[i]).abs() < 1e-8,
                "method {} row {i}: {} vs {}",
                k + 1,
                x[i],
                x_true[i]
            );
        }
    }
}

#[test]
fn spline_and_fft_kernels_cooperate_with_machine() {
    // Spline fit distributed over the machine, FFT on another team size —
    // exercises the kernels crate end to end.
    use kali::kernels::fft::{bit_reverse_permute, fft_dist, naive_dft, Complex};
    use kali::kernels::spline::{spline_fit, spline_rhs};

    let nk = 32usize;
    let h = 1.0 / nk as f64;
    let y: Vec<f64> = (0..=nk).map(|i| (i as f64 * h * 3.0).sin()).collect();
    let seq = spline_fit(&y, h);
    let rhs = spline_rhs(&y, h);
    let ni = nk - 1;
    let run = Machine::run(cfg(4), move |proc| {
        let grid = ProcGrid::new_1d(proc.nprocs());
        let dist = Dist1::block(ni, proc.nprocs());
        let me = proc.rank();
        let (lo, hi) = (dist.lower(me).unwrap(), dist.upper(me).unwrap() + 1);
        let mut ctx = Ctx::new(proc, grid);
        kali::kernels::spline::spline_fit_dist(&mut ctx, ni, &rhs[lo..hi])
    });
    let m: Vec<f64> = run.results.concat();
    for i in 0..ni {
        assert!((m[i] - seq.m[i + 1]).abs() < 1e-9);
    }

    let n = 64usize;
    let x: Vec<Complex> = (0..n)
        .map(|i| Complex::new((i as f64 * 0.2).cos(), 0.0))
        .collect();
    let x2 = x.clone();
    let run = Machine::run(cfg(8), move |proc| {
        let grid = ProcGrid::new_1d(proc.nprocs());
        let nb = n / proc.nprocs();
        let base = proc.rank() * nb;
        let mut ctx = Ctx::new(proc, grid);
        fft_dist(&mut ctx, n, x2[base..base + nb].to_vec())
    });
    let mut got: Vec<Complex> = run.results.concat();
    bit_reverse_permute(&mut got);
    let want = naive_dft(&x);
    for k in 0..n {
        assert!((got[k] - want[k]).norm() < 1e-8 * n as f64);
    }
}
