//! Property tests for the compile-time analyzer: random well-formed
//! stencil programs must come back clean, carry a static communication
//! plan, and — seeded — replay their cold trip bitwise-identically to
//! the inspector path with exact counters; random seeded-fault programs
//! must be flagged by the analyzer *and* rejected by the runtime, with
//! the two verdicts agreeing. The checked-in `tests/corpus/bad` files
//! are pinned here too: each must produce the diagnostic code its file
//! name promises, with a usable span.

use std::time::Duration;

use proptest::prelude::*;

use kali::lang::{analyze, comm_plans, parse, run_source_with, HostValue, LangRun, RunOptions};
use kali::prelude::*;

fn cfg(p: usize) -> MachineConfig {
    Machine::build(
        BackendKind::from_env(),
        Topology::FullyConnected,
        CostModel::unit(),
    )
    .procs(p)
    .watchdog(Duration::from_secs(60))
    .config()
}

fn dist_name(d: usize) -> &'static str {
    if d == 0 {
        "block"
    } else {
        "cyclic"
    }
}

/// Run `src` on the inspector path and on the statically seeded path;
/// both must succeed with bitwise-identical arrays and value traffic.
fn run_seeded_pair(
    src: &str,
    entry: &str,
    p: usize,
    grid: &[usize],
    args: &[HostValue],
) -> (LangRun, LangRun) {
    let inspect = run_source_with(cfg(p), src, entry, grid, args, RunOptions::default())
        .unwrap_or_else(|e| panic!("inspector path: {e}\n{src}"));
    let seeded = run_source_with(
        cfg(p),
        src,
        entry,
        grid,
        args,
        RunOptions {
            static_seed: true,
            ..RunOptions::default()
        },
    )
    .unwrap_or_else(|e| panic!("seeded path: {e}\n{src}"));
    for ((_, a), (name, b)) in inspect.arrays.iter().zip(&seeded.arrays) {
        for (k, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "array {name} diverges at flat {k}: {x} vs {y}\n{src}"
            );
        }
    }
    assert_eq!(
        inspect.report.total_exchange_words, seeded.report.total_exchange_words,
        "static schedule must move exactly the inspector's value words\n{src}"
    );
    (inspect, seeded)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random affine 1D stencils: analyzer clean, plan extracted, and the
    /// seeded run replays every trip — including the cold one — with
    /// zero inspector runs and exact replay/hit counters.
    #[test]
    fn random_stencils_are_clean_and_seed_with_exact_counters(
        logp in 1u32..3,
        extra in 0usize..12,
        o1 in -2i64..3,
        o2 in -2i64..3,
        dist_a in 0usize..2,
        dist_b in 0usize..2,
        niter in 2i64..5,
        seed in 0u64..1000,
    ) {
        let p = 1usize << logp;
        let n = (4 * p + extra).max(6);
        let lo = 1 + o1.max(o2).max(0);
        let hi = n as i64 - (-o1.min(o2).min(0));
        let src = format!(
            r#"
parsub gen(a, b, n, niter; procs)
  processors procs(p)
  real a(n) dist ({da})
  real b(n) dist ({db})
  do 1000 it = 1, niter
    doall 100 i = {lo}, {hi} on owner(a(i))
      a(i) = 0.5*a(i) + b(i - {o1}) + 0.25*b(i - {o2}) + it
100 continue
1000 continue
end
"#,
            da = dist_name(dist_a),
            db = dist_name(dist_b),
        );
        let prog = parse(&src).expect("generated program parses");
        let diags = analyze(&prog);
        prop_assert!(diags.is_empty(), "well-formed program flagged: {diags:?}\n{src}");
        let plans = comm_plans(&prog);
        prop_assert_eq!(plans.len(), 1, "stencil body must be analyzable\n{}", src);
        prop_assert_eq!(plans.values().next().unwrap().reads.len(), 3);

        let b0: Vec<f64> = (0..n).map(|i| ((i as u64 * 37 + seed) % 101) as f64 / 10.0).collect();
        let args = [
            HostValue::Array { data: vec![0.0; n], bounds: vec![(1, n as i64)] },
            HostValue::Array { data: b0, bounds: vec![(1, n as i64)] },
            HostValue::Int(n as i64),
            HostValue::Int(niter),
        ];
        let (inspect, seeded) = run_seeded_pair(&src, "gen", p, &[p], &args);
        // Inspector path: one cold inspection per processor, niter-1
        // replays each. Seeded path: zero inspections, niter replays.
        prop_assert_eq!(inspect.report.total_inspector_runs, p as u64);
        prop_assert_eq!(seeded.report.total_inspector_runs, 0);
        prop_assert_eq!(seeded.report.total_schedule_replays, p as u64 * niter as u64);
        prop_assert_eq!(seeded.report.total_optimistic_hits, seeded.report.total_schedule_replays);
        prop_assert_eq!(seeded.report.total_rollbacks, 0);
    }

    /// Seeded faults: an undeclared array read (A001) or a provably
    /// non-owned shifted write (A005). The analyzer must flag the exact
    /// code, and the runtime must reject the same program — static and
    /// dynamic verdicts agree.
    #[test]
    fn seeded_faults_flag_statically_and_fail_dynamically(
        logp in 1u32..3,
        extra in 0usize..10,
        fault in 0usize..2,
        seed in 0u64..1000,
    ) {
        let p = 1usize << logp;
        let n = 4 * p + extra;
        // Fault 0 hides the undeclared read in a branch the inspector
        // never takes, so only the exchange-time A001 guard can catch it
        // — the exact hazard the analyzer reports ahead of time.
        let (body, code, runtime_hint) = match fault {
            0 => (
                "if (i .lt. 0) then\n      a(i) = ghost(i)\n    endif",
                "A001",
                "error[A001]",
            ),
            _ => ("a(i + 1) = a(i)", "A005", "owner-computes violation"),
        };
        let src = format!(
            r#"
parsub gen(a, n; procs)
  processors procs(p)
  real a(n) dist (block)
  doall 100 i = 1, n - 1 on owner(a(i))
    {body}
100 continue
end
"#
        );
        let prog = parse(&src).expect("generated program parses");
        let diags = analyze(&prog);
        prop_assert!(
            diags.iter().any(|d| d.code == code),
            "expected {} in {:?}\n{}", code, diags, src
        );
        prop_assert!(!diags[0].span.is_empty(), "diagnostic must carry a span");

        let a0: Vec<f64> = (0..n).map(|i| ((i as u64 * 7 + seed) % 13) as f64).collect();
        let args = [
            HostValue::Array { data: a0, bounds: vec![(1, n as i64)] },
            HostValue::Int(n as i64),
        ];
        let res = std::panic::catch_unwind(|| {
            run_source_with(cfg(p), &src, "gen", &[p], &args, RunOptions::default())
        });
        let msg = match res {
            Ok(_) => panic!("faulty program must fail at runtime\n{src}"),
            Err(e) => e
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_else(|| "non-string panic".into()),
        };
        prop_assert!(
            msg.contains(runtime_hint),
            "runtime verdict disagrees with the analyzer: {msg}\n{src}"
        );
    }
}

/// Every checked-in bad-corpus program produces at least one diagnostic
/// whose code matches the file-name prefix (`a005_...` must flag A005),
/// carrying a non-degenerate span that renders with a caret.
#[test]
fn bad_corpus_files_flag_their_advertised_code() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/corpus/bad");
    let mut seen = 0usize;
    for entry in std::fs::read_dir(dir).expect("corpus directory exists") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("kf1") {
            continue;
        }
        seen += 1;
        let stem = path.file_stem().unwrap().to_str().unwrap();
        let want = stem.split('_').next().unwrap().to_uppercase();
        let src = std::fs::read_to_string(&path).unwrap();
        let diag = match parse(&src) {
            Err(d) => d,
            Ok(prog) => {
                let mut ds = analyze(&prog);
                assert!(!ds.is_empty(), "{stem}: analyzer found nothing");
                ds.remove(0)
            }
        };
        assert_eq!(diag.code, want, "{stem}: flagged {} instead", diag.code);
        assert!(
            !diag.span.is_empty() || diag.span.lo > 0,
            "{stem}: degenerate span"
        );
        let rendered = diag.render(&src);
        assert!(
            rendered.contains("-->"),
            "{stem}: no position line\n{rendered}"
        );
        assert!(rendered.contains('^'), "{stem}: no caret\n{rendered}");
    }
    assert!(seen >= 12, "corpus unexpectedly small: {seen} files");
}

/// Satellite guard for the span-threading refactor: all five shipped
/// listings round-trip through the parser with spans that slice back to
/// the exact source text they claim to cover, and the analyzer accepts
/// every one of them without diagnostics.
#[test]
fn shipped_listings_round_trip_with_faithful_spans() {
    for name in ["jacobi", "shift", "tri", "adi", "spmv"] {
        let src = kali::lang::listing(name).unwrap();
        let prog = parse(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(prog.src, src, "{name}: program must retain its source");
        for sub in &prog.subs {
            assert_eq!(
                sub.name_span.slice(src),
                sub.name,
                "{name}: subroutine name span drifted"
            );
            for stmt in &sub.body {
                assert!(
                    !stmt.span.is_empty(),
                    "{name}/{}: statement with empty span",
                    sub.name
                );
                let text = stmt.span.slice(src);
                assert!(
                    !text.trim().is_empty(),
                    "{name}/{}: span covers only whitespace",
                    sub.name
                );
            }
        }
        assert!(
            analyze(&prog).is_empty(),
            "{name}: shipped listing must be diagnostic-free"
        );
    }
}
