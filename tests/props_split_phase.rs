//! Property tests for the split-phase machine primitives and the
//! split-phase doall engine.
//!
//! Machine level: a random message pattern executed with
//! `isend`/`irecv`+`wait` must be *equivalent* to the blocking
//! `send`/`recv` execution — bitwise-identical payloads, identical
//! words/messages on the wire, monotone virtual clocks — whenever every
//! post is immediately waited; and under arbitrary compute interleavings
//! the payloads and traffic stay identical while the split-phase
//! timeline never exceeds the blocking one. Language level: random 1-D
//! stencils across random distributions answer bitwise-identically with
//! split-phase replay on and off.

use std::time::Duration;

use proptest::prelude::*;

use kali::lang::{run_source_with, HostValue, RunOptions};
use kali::prelude::*;

fn cfg(p: usize) -> MachineConfig {
    Machine::build(
        BackendKind::from_env(),
        Topology::FullyConnected,
        CostModel::unit(),
    )
    .procs(p)
    .watchdog(Duration::from_secs(60))
    .config()
}

const T: Tag = tag(NS_USER, 0x5);

/// Ring exchange: everyone sends `rounds` messages of per-round sizes to
/// the next rank and receives from the previous one, with `work[r]` flops
/// charged between post and completion. Returns (received payload sums,
/// per-proc clock, report stats).
fn ring(
    p: usize,
    sizes: Vec<usize>,
    work: Vec<u64>,
    split: bool,
) -> (Vec<f64>, Vec<f64>, u64, u64) {
    let run = Machine::run(cfg(p), move |proc| {
        let me = proc.rank();
        let nxt = (me + 1) % proc.nprocs();
        let prv = (me + proc.nprocs() - 1) % proc.nprocs();
        let mut sum = 0.0;
        let mut clocks_monotone = true;
        let mut last_clock = proc.clock();
        for (r, &sz) in sizes.iter().enumerate() {
            let payload: Vec<f64> = (0..sz).map(|k| (me * 1000 + r * 10 + k) as f64).collect();
            let got: Vec<f64> = if split {
                let _ = proc.isend(nxt, T, payload);
                let h = proc.irecv::<Vec<f64>>(prv, T);
                proc.compute(work[r] as f64);
                proc.wait(h)
            } else {
                proc.send(nxt, T, payload);
                proc.compute(work[r] as f64);
                proc.recv(prv, T)
            };
            sum += got.iter().sum::<f64>();
            clocks_monotone &= proc.clock() >= last_clock;
            last_clock = proc.clock();
        }
        assert!(clocks_monotone, "virtual clock went backwards");
        (sum, proc.clock())
    });
    let sums = run.results.iter().map(|(s, _)| *s).collect();
    let clocks = run.results.iter().map(|(_, c)| *c).collect();
    (sums, clocks, run.report.total_words, run.report.total_msgs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn immediately_waited_interleavings_match_blocking(
        p in 2usize..6,
        sizes in prop::collection::vec(1usize..16, 1..6),
        work in prop::collection::vec(0u64..5000, 6..7),
    ) {
        let (s_block, c_block, w_block, m_block) =
            ring(p, sizes.clone(), work.clone(), false);
        let (s_split, c_split, w_split, m_split) = ring(p, sizes, work, true);
        // Bitwise-identical results and identical wire traffic.
        for (a, b) in s_block.iter().zip(&s_split) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        prop_assert_eq!(w_block, w_split);
        prop_assert_eq!(m_block, m_split);
        // The split-phase timeline never exceeds the blocking one (the
        // receive overhead overlaps transit, idle only shrinks).
        for (a, b) in c_block.iter().zip(&c_split) {
            prop_assert!(b <= a, "split clock {} above blocking {}", b, a);
        }
    }

    #[test]
    fn out_of_order_completion_delivers_every_payload(
        p in 2usize..6,
        n_msgs in 1usize..8,
        work in 0u64..20_000,
        rev in 0usize..2,
    ) {
        let reverse = rev == 1;
        // Post n receives, compute, complete in forward or reverse order:
        // matching is by (src, tag) FIFO so payload k always lands in
        // posting slot k, whatever the wait order.
        let run = Machine::run(cfg(p), move |proc| {
            let me = proc.rank();
            let nxt = (me + 1) % proc.nprocs();
            let prv = (me + proc.nprocs() - 1) % proc.nprocs();
            for k in 0..n_msgs {
                let _ = proc.isend(nxt, T, vec![(me * 100 + k) as f64; k + 1]);
            }
            let handles: Vec<_> =
                (0..n_msgs).map(|_| proc.irecv::<Vec<f64>>(prv, T)).collect();
            proc.compute(work as f64);
            let mut got = vec![Vec::new(); n_msgs];
            let order: Vec<usize> = if reverse {
                (0..n_msgs).rev().collect()
            } else {
                (0..n_msgs).collect()
            };
            let mut handles: Vec<_> = handles.into_iter().map(Some).collect();
            for k in order {
                got[k] = proc.wait(handles[k].take().expect("each handle waited once"));
            }
            (got, prv)
        });
        for (got, prv) in &run.results {
            for (k, payload) in got.iter().enumerate() {
                prop_assert_eq!(payload.len(), k + 1);
                prop_assert!(payload.iter().all(|&v| v == (prv * 100 + k) as f64));
            }
        }
    }

    #[test]
    fn random_1d_stencils_split_phase_equivalent(
        n in 8usize..24,
        p in 2usize..5,
        offset in 1usize..3,
        niter in 2usize..5,
        dist_kind in 0usize..3,
        seed in 0u64..50,
    ) {
        let clause = match dist_kind {
            0 => "block".to_string(),
            1 => "cyclic".to_string(),
            _ => "cyclic(2)".to_string(),
        };
        let src = format!(
            r#"
parsub s(a, b, n, niter; procs)
  processors procs(p)
  real a(n), b(n) dist ({clause})
  do 1000 it = 1, niter
    doall 100 i = 1, n - {offset} on owner(a(i))
      a(i) = a(i) + 0.5*b(i + {offset}) + 0.25*a(i + {offset})
100 continue
1000 continue
end
"#
        );
        let b0: Vec<f64> = (0..n).map(|i| ((i as u64 * 37 + seed) % 17) as f64).collect();
        let args = [
            HostValue::Array { data: vec![0.0; n], bounds: vec![(1, n as i64)] },
            HostValue::Array { data: b0, bounds: vec![(1, n as i64)] },
            HostValue::Int(n as i64),
            HostValue::Int(niter as i64),
        ];
        let go = |split: bool| {
            run_source_with(
                cfg(p),
                &src,
                "s",
                &[p],
                &args,
                RunOptions { policy: ExecPolicy { split, ..ExecPolicy::default() }, ..RunOptions::default() },
            )
            .unwrap_or_else(|e| panic!("{e}\n{src}"))
        };
        let blocking = go(false);
        let split = go(true);
        for ((_, xs), (name, ys)) in blocking.arrays.iter().zip(&split.arrays) {
            for (k, (x, y)) in xs.iter().zip(ys).enumerate() {
                prop_assert_eq!(
                    x.to_bits(), y.to_bits(),
                    "array {} flat {} diverges: {} vs {}\n{}", name, k, x, y, src
                );
            }
        }
        prop_assert_eq!(
            blocking.report.total_exchange_words,
            split.report.total_exchange_words
        );
        prop_assert!(split.report.elapsed <= blocking.report.elapsed);
    }

    #[test]
    fn random_redistributions_roll_back_and_never_read_stale(
        logp in 0u32..3,
        extra in 0usize..10,
        offset in 1usize..3,
        flip_at in 1i64..5,
        flip_to in 0usize..3,
        niter in 2i64..6,
        seed in 0u64..100,
    ) {
        // A random redistribute-mid-loop sequence under optimistic
        // voting: the invalidated trip must *roll back* (one per
        // processor when the flip lands before the last trip), later
        // trips must replay through the piggybacked vote again, and the
        // answers must stay bitwise-identical to the pessimistic-vote
        // run — a stale-route payload reaching storage would diverge.
        let p = 1usize << logp;
        let n = (4 * p + extra).max(6);
        let clause = match flip_to {
            0 => "cyclic".to_string(),
            1 => "cyclic(2)".to_string(),
            _ => "cyclic(3)".to_string(),
        };
        let src = format!(
            r#"
parsub flip(a, b, n, niter; procs)
  processors procs(p)
  real a(n), b(n) dist (block)
  do 1000 it = 1, niter
    doall 100 i = 1, n - {offset} on owner(a(i))
      a(i) = a(i) + 0.5*b(i + {offset}) + 0.25*a(i + {offset})
100 continue
    if (it .eq. {flip_at}) then
      distribute b ({clause})
    endif
1000 continue
end
"#
        );
        let b0: Vec<f64> = (0..n).map(|i| ((i as u64 * 41 + seed) % 23) as f64).collect();
        let args = [
            HostValue::Array { data: vec![0.0; n], bounds: vec![(1, n as i64)] },
            HostValue::Array { data: b0, bounds: vec![(1, n as i64)] },
            HostValue::Int(n as i64),
            HostValue::Int(niter),
        ];
        let go = |optimistic: bool| {
            run_source_with(
                cfg(p),
                &src,
                "flip",
                &[p],
                &args,
                RunOptions { policy: ExecPolicy { optimistic, ..ExecPolicy::default() }, ..RunOptions::default() },
            )
            .unwrap_or_else(|e| panic!("{e}\n{src}"))
        };
        let pess = go(false);
        let opt = go(true);
        for ((_, xs), (name, ys)) in pess.arrays.iter().zip(&opt.arrays) {
            for (k, (x, y)) in xs.iter().zip(ys).enumerate() {
                prop_assert_eq!(
                    x.to_bits(), y.to_bits(),
                    "array {} flat {} diverges: {} vs {}\n{}", name, k, x, y, src
                );
            }
        }
        prop_assert_eq!(
            pess.report.total_exchange_words,
            opt.report.total_exchange_words
        );
        prop_assert_eq!(
            pess.report.total_schedule_replays,
            opt.report.total_schedule_replays
        );
        // Exact counter accounting: trip 1 is cold; a flip before the
        // last trip makes trip flip_at+1 the single rollback; every
        // other warm trip is a piggybacked-vote hit.
        let flips = u64::from(flip_at < niter);
        prop_assert_eq!(opt.report.total_rollbacks, p as u64 * flips);
        prop_assert_eq!(
            opt.report.total_optimistic_hits,
            p as u64 * (niter as u64 - 1 - flips)
        );
        prop_assert_eq!(
            opt.report.total_optimistic_hits,
            opt.report.total_schedule_replays
        );
        prop_assert_eq!(pess.report.total_optimistic_hits, 0);
        prop_assert_eq!(pess.report.total_rollbacks, 0);
    }
}
