//! Differential suite for the declarative `StencilPlan` API: every
//! migrated solver must be bitwise-invariant across execution policies
//! (blocking / split-pessimistic / split-optimistic), must move exactly
//! the same exchange words wherever the ghost schedule is the same, and
//! must pin its pre-redesign behaviour — including *exact* halo-schedule
//! build / piggybacked-vote-hit / rollback counters across a
//! redistribute-mid-loop sequence.

use std::time::Duration;

use kali::prelude::*;
use kali::solvers::adi::{adi_run, adi_seq_iteration, suggested_rho};
use kali::solvers::jacobi::jacobi_step;
use kali::solvers::mg2::mg2_vcycle;
use kali::solvers::seq;
use kali::solvers::transfer::{intrp2, resid2, rest2};

fn cfg(p: usize) -> MachineConfig {
    Machine::build(
        BackendKind::from_env(),
        Topology::FullyConnected,
        CostModel::unit(),
    )
    .procs(p)
    .watchdog(Duration::from_secs(60))
    .config()
}

fn assert_bitwise(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (k, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what} flat {k}: {x} vs {y}");
    }
}

/// The pre-redesign compiled Jacobi sweep, reconstructed: a blocking
/// full-skirt ghost exchange followed by a copy-in/copy-out rewrite of
/// the owned interior in natural order — exactly what `jacobi_update`
/// did before the plan API subsumed it.
fn jacobi_sweep_pre_redesign(proc: &mut Proc, u: &mut DistArray2<f64>, f: &DistArray2<f64>) {
    let [nxp, nyp] = u.extents();
    u.exchange_ghosts(proc);
    if !u.is_participant() {
        return;
    }
    let old = u.clone();
    proc.memop((u.local_len(0) * u.local_len(1)) as f64);
    let i0 = u.owned_range(0).start.max(1);
    let i1 = u.owned_range(0).end.min(nxp - 1);
    let j0 = u.owned_range(1).start.max(1);
    let j1 = u.owned_range(1).end.min(nyp - 1);
    let mut points = 0usize;
    for i in i0..i1 {
        for j in j0..j1 {
            let v = 0.25
                * (old.at(i + 1, j) + old.at(i - 1, j) + old.at(i, j + 1) + old.at(i, j - 1))
                - f.at(i, j);
            u.put(i, j, v);
            points += 1;
        }
    }
    proc.compute(5.0 * points as f64);
}

fn jacobi_under(
    policy: Option<ExecPolicy>,
    sweeps: usize,
) -> kali::machine::SimRun<Option<Vec<f64>>> {
    let n = 16usize;
    Machine::run(cfg(4), move |proc| {
        let grid = ProcGrid::new_2d(2, 2);
        let spec = DistSpec::block2();
        let mut u = DistArray2::from_fn(
            proc.rank(),
            &grid,
            &spec,
            [n + 1, n + 1],
            [1, 1],
            |[i, j]| {
                if i == 0 || i == n || j == 0 || j == n {
                    0.0
                } else {
                    ((i * 13 + j * 7) % 11) as f64 / 22.0
                }
            },
        );
        let farr = DistArray2::from_fn(
            proc.rank(),
            &grid,
            &spec,
            [n + 1, n + 1],
            [0, 0],
            |[i, j]| ((i + 2 * j) % 5) as f64 / 50.0,
        );
        match policy {
            Some(p) => {
                let mut ctx = Ctx::with_policy(proc, grid, p);
                for _ in 0..sweeps {
                    jacobi_step(&mut ctx, &mut u, &farr);
                }
                u.gather_to_root(ctx.proc())
            }
            None => {
                for _ in 0..sweeps {
                    jacobi_sweep_pre_redesign(proc, &mut u, &farr);
                }
                u.gather_to_root(proc)
            }
        }
    })
}

#[test]
fn jacobi_is_policy_invariant_and_pins_the_pre_redesign_sweep() {
    let sweeps = 6;
    let pre = jacobi_under(None, sweeps);
    let blocking = jacobi_under(Some(ExecPolicy::blocking()), sweeps);
    let pessimistic = jacobi_under(Some(ExecPolicy::pessimistic()), sweeps);
    let optimistic = jacobi_under(Some(ExecPolicy::default()), sweeps);
    let want = pre.results[0].as_ref().unwrap();
    for (run, what) in [
        (&blocking, "blocking"),
        (&pessimistic, "pessimistic"),
        (&optimistic, "optimistic"),
    ] {
        assert_bitwise(want, run.results[0].as_ref().unwrap(), what);
    }
    // Both split policies move the same faces-only value words; the
    // optimistic one replays them from the cache without re-deriving.
    assert_eq!(
        pessimistic.report.total_exchange_words, optimistic.report.total_exchange_words,
        "the piggybacked vote must not change the value traffic"
    );
    assert_eq!(
        optimistic.report.total_rollbacks, 0,
        "a stable loop must never roll back"
    );
    assert_eq!(
        optimistic.report.total_inspector_runs, 4,
        "one analytic build per processor, then cache replays"
    );
    assert_eq!(
        optimistic.report.total_optimistic_hits,
        4 * (sweeps as u64 - 1),
        "every warm sweep must be a piggybacked-vote replay"
    );
    // The pre-redesign sweep paid a blocking full-skirt exchange per
    // trip; the plan's default must not lengthen the virtual timeline.
    assert!(optimistic.report.elapsed <= pre.report.elapsed);
}

#[test]
fn adi_is_policy_invariant_bitwise() {
    let (nx, ny) = (16usize, 16usize);
    let pde = Pde::poisson();
    let us = seq::Grid2::random_interior(nx, ny, 7);
    let f = seq::apply2(&pde, &us);
    let rho = suggested_rho(&pde, nx, ny);
    let iters = 3;
    // Sequential reference to anchor correctness, not just consistency.
    let mut u_seq = seq::Grid2::zeros(nx, ny);
    for _ in 0..iters {
        adi_seq_iteration(&pde, rho, &mut u_seq, &f);
    }
    let go = |policy: ExecPolicy| {
        let f2 = f.clone();
        Machine::run(cfg(4), move |proc| {
            let grid = ProcGrid::new_2d(2, 2);
            let spec = DistSpec::block2();
            let mut u = DistArray2::<f64>::new(proc.rank(), &grid, &spec, [nx + 1, ny + 1], [1, 1]);
            let farr = DistArray2::from_fn(
                proc.rank(),
                &grid,
                &spec,
                [nx + 1, ny + 1],
                [0, 0],
                |[i, j]| f2.at(i, j),
            );
            let mut ctx = Ctx::with_policy(proc, grid, policy);
            let hist = adi_run(&mut ctx, &pde, rho, &mut u, &farr, iters, true);
            (hist, u.gather_to_root(ctx.proc()))
        })
    };
    let blocking = go(ExecPolicy::blocking());
    let pessimistic = go(ExecPolicy::pessimistic());
    let optimistic = go(ExecPolicy::default());
    let (hist_b, u_b) = &blocking.results[0];
    for run in [&pessimistic, &optimistic] {
        let (hist, u) = &run.results[0];
        assert_bitwise(u_b.as_ref().unwrap(), u.as_ref().unwrap(), "adi field");
        assert_bitwise(hist_b, hist, "adi residual history");
    }
    assert_eq!(
        pessimistic.report.total_exchange_words,
        optimistic.report.total_exchange_words
    );
    assert_eq!(optimistic.report.total_rollbacks, 0);
    // The residual's geometry repeats every half-sweep: replays dominate.
    assert!(optimistic.report.total_optimistic_hits > 0);
    // Anchor: the final field matches the sequential reference.
    let got = optimistic.results[0].1.as_ref().unwrap();
    for i in 0..=nx {
        for j in 0..=ny {
            assert!(
                (got[i * (ny + 1) + j] - u_seq.at(i, j)).abs() < 1e-10,
                "({i},{j})"
            );
        }
    }
}

#[test]
fn mg2_vcycle_and_transfers_are_policy_invariant_with_word_parity() {
    // mg2's halos are all corner-completing (Ghosts::full), so *every*
    // policy — including the blocking full-skirt exchange — derives the
    // same schedule and must move exactly the same value words.
    let (nx, ny) = (8usize, 16usize);
    let pde = Pde::poisson();
    let us = seq::Grid2::random_interior(nx, ny, 5);
    let f = seq::apply2(&pde, &us);
    let go = |policy: ExecPolicy| {
        let f2 = f.clone();
        Machine::run(cfg(4), move |proc| {
            let grid = ProcGrid::new_1d(4);
            let spec = DistSpec::local_block();
            let mut u = DistArray2::<f64>::new(proc.rank(), &grid, &spec, [nx + 1, ny + 1], [0, 1]);
            let farr = DistArray2::from_fn(
                proc.rank(),
                &grid,
                &spec,
                [nx + 1, ny + 1],
                [0, 1],
                |[i, j]| f2.at(i, j),
            );
            let mut ctx = Ctx::with_policy(proc, grid, policy);
            for _ in 0..2 {
                mg2_vcycle(&mut ctx, &pde, &mut u, &farr);
            }
            // The transfer chain on its own: residual, restriction,
            // interpolation — the Listing 10 shapes.
            let mut r = resid2(&mut ctx, &pde, &mut u, &farr);
            let g = rest2(&mut ctx, &mut r);
            let mut v = r.like();
            intrp2(&mut ctx, &mut v, &g);
            (u.gather_to_root(ctx.proc()), v.gather_to_root(ctx.proc()))
        })
    };
    let blocking = go(ExecPolicy::blocking());
    let pessimistic = go(ExecPolicy::pessimistic());
    let optimistic = go(ExecPolicy::default());
    let (u_b, v_b) = &blocking.results[0];
    for (run, what) in [(&pessimistic, "pessimistic"), (&optimistic, "optimistic")] {
        let (u, v) = &run.results[0];
        assert_bitwise(u_b.as_ref().unwrap(), u.as_ref().unwrap(), what);
        assert_bitwise(v_b.as_ref().unwrap(), v.as_ref().unwrap(), what);
    }
    // resid2 declares faces-only ghosts while the blocking baseline
    // refreshes the full skirt, so word parity binds the split policies.
    assert_eq!(
        pessimistic.report.total_exchange_words,
        optimistic.report.total_exchange_words
    );
    assert_eq!(optimistic.report.total_rollbacks, 0);
    assert!(
        optimistic.report.total_optimistic_hits > 0,
        "the second V-cycle's levels must replay from the cache"
    );
    assert!(
        optimistic.report.total_inspector_runs < pessimistic.report.total_inspector_runs,
        "caching must eliminate warm analytic rebuilds"
    );
}

#[test]
fn redistribute_mid_loop_pins_exact_hit_and_rollback_counters() {
    // A Jacobi loop interrupted by a redistribution: the generation bump
    // must cost exactly one rollback per processor (the vote disagrees
    // once under the still-gated site), one fresh analytic build, and
    // then replay warm again — with the answer bitwise-equal to the
    // blocking rebuild-per-trip baseline throughout.
    let n = 16usize;
    let (s1, s2) = (3usize, 3usize);
    let go = |policy: ExecPolicy| {
        Machine::run(cfg(4), move |proc| {
            let grid = ProcGrid::new_1d(4);
            let spec = DistSpec::local_block();
            let mut u = DistArray2::from_fn(
                proc.rank(),
                &grid,
                &spec,
                [n + 1, n + 1],
                [0, 1],
                |[i, j]| {
                    if i == 0 || i == n || j == 0 || j == n {
                        0.0
                    } else {
                        ((3 * i + j) % 9) as f64 / 18.0
                    }
                },
            );
            let farr = DistArray2::from_fn(
                proc.rank(),
                &grid,
                &spec,
                [n + 1, n + 1],
                [0, 0],
                |[i, j]| ((i * j) % 7) as f64 / 70.0,
            );
            let mut ctx = Ctx::with_policy(proc, grid, policy);
            for _ in 0..s1 {
                jacobi_step(&mut ctx, &mut u, &farr);
            }
            // Structurally identical layout; the generation still bumps,
            // so every cached route must be invalidated.
            let mut u = u.redistribute(ctx.proc(), &spec, [0, 1]);
            for _ in 0..s2 {
                jacobi_step(&mut ctx, &mut u, &farr);
            }
            (
                u.gather_to_root(ctx.proc()),
                ctx.proc().stats().inspector_runs,
                ctx.proc().stats().optimistic_hits,
                ctx.proc().stats().rollbacks,
            )
        })
    };
    let blocking = go(ExecPolicy::blocking());
    let optimistic = go(ExecPolicy::default());
    assert_bitwise(
        blocking.results[0].0.as_ref().unwrap(),
        optimistic.results[0].0.as_ref().unwrap(),
        "redistribute-mid-loop field",
    );
    for (rank, (_, builds, hits, rollbacks)) in optimistic.results.iter().enumerate() {
        assert_eq!(*builds, 2, "rank {rank}: one build per generation");
        assert_eq!(
            *hits,
            (s1 as u64 - 1) + (s2 as u64 - 1),
            "rank {rank}: every other sweep replays"
        );
        assert_eq!(
            *rollbacks, 1,
            "rank {rank}: the redistribution rolls back once"
        );
    }
    // The blocking baseline rebuilt on every one of the s1+s2 sweeps.
    for (rank, (_, builds, hits, rollbacks)) in blocking.results.iter().enumerate() {
        assert_eq!(*builds, (s1 + s2) as u64, "rank {rank}");
        assert_eq!(*hits, 0, "rank {rank}");
        assert_eq!(*rollbacks, 0, "rank {rank}");
    }
}
