//! Differential suite for executor reuse: every shipped KF1 program runs
//! with the schedule cache force-disabled and force-enabled; the final
//! arrays must be *bitwise* identical and the exchange phases must move
//! exactly the same value words. A cached schedule is an optimization of
//! the communication protocol, never of the answer.

use std::time::Duration;

use kali::lang::{listing, run_source_with, HostValue, LangRun, RunOptions};
use kali::prelude::*;

fn cfg(p: usize) -> MachineConfig {
    Machine::build(
        BackendKind::from_env(),
        Topology::FullyConnected,
        CostModel::unit(),
    )
    .procs(p)
    .watchdog(Duration::from_secs(60))
    .config()
}

/// Run `src` twice (cache off, cache on) and assert the differential
/// invariants; returns (off, on) for workload-specific checks.
fn differential(
    src: &str,
    entry: &str,
    p: usize,
    grid: &[usize],
    args: &[HostValue],
) -> (LangRun, LangRun) {
    let off = run_source_with(
        cfg(p),
        src,
        entry,
        grid,
        args,
        RunOptions {
            schedule_cache: false,
            ..RunOptions::default()
        },
    )
    .unwrap_or_else(|e| panic!("{entry} (cache off): {e}"));
    let on = run_source_with(
        cfg(p),
        src,
        entry,
        grid,
        args,
        RunOptions {
            schedule_cache: true,
            ..RunOptions::default()
        },
    )
    .unwrap_or_else(|e| panic!("{entry} (cache on): {e}"));

    for ((name_off, a_off), (name_on, a_on)) in off.arrays.iter().zip(&on.arrays) {
        assert_eq!(name_off, name_on);
        assert_eq!(a_off.len(), a_on.len());
        for (k, (x, y)) in a_off.iter().zip(a_on).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{entry}: array {name_off} diverges at flat {k}: {x} vs {y}"
            );
        }
    }
    assert_eq!(
        off.report.total_exchange_words, on.report.total_exchange_words,
        "{entry}: replayed schedules must move exactly the uncached value words"
    );
    assert_eq!(
        off.report.total_schedule_replays, 0,
        "{entry}: cache off must never replay"
    );
    assert!(
        on.report.total_msgs <= off.report.total_msgs,
        "{entry}: executor reuse must not add traffic ({} vs {} msgs)",
        on.report.total_msgs,
        off.report.total_msgs
    );
    (off, on)
}

fn grid2(np: i64, fill: f64) -> HostValue {
    let w = (np + 1) as usize;
    HostValue::Array {
        data: vec![fill; w * w],
        bounds: vec![(0, np), (0, np)],
    }
}

#[test]
fn differential_jacobi() {
    let np = 12i64;
    let (_, on) = differential(
        listing("jacobi").unwrap(),
        "jacobi",
        4,
        &[2, 2],
        &[
            grid2(np, 0.0),
            grid2(np, 0.03),
            HostValue::Int(np),
            HostValue::Int(6),
        ],
    );
    // Looped workload: replays must dominate inspector runs.
    assert!(
        on.report.total_schedule_replays > on.report.total_inspector_runs,
        "jacobi: {} replays vs {} runs",
        on.report.total_schedule_replays,
        on.report.total_inspector_runs
    );
}

#[test]
fn differential_shift() {
    let n = 12usize;
    let (_, on) = differential(
        listing("shift").unwrap(),
        "shift",
        4,
        &[4],
        &[
            HostValue::Array {
                data: (1..=n).map(|i| i as f64).collect(),
                bounds: vec![(1, n as i64)],
            },
            HostValue::Int(n as i64),
        ],
    );
    // A single doall invocation: nothing to replay, nothing broken.
    assert_eq!(on.report.total_schedule_replays, 0);
}

#[test]
fn differential_tri() {
    let n = 32usize;
    let sys = kali::kernels::TriDiag::random_dd(n, 7);
    let x_true: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.31).cos()).collect();
    let f = sys.apply(&x_true);
    let arr = |data: Vec<f64>| HostValue::Array {
        data,
        bounds: vec![(1, n as i64)],
    };
    differential(
        listing("tri").unwrap(),
        "tri",
        4,
        &[4],
        &[
            arr(vec![0.0; n]),
            arr(f),
            arr(sys.b.clone()),
            arr(sys.a.clone()),
            arr(sys.c.clone()),
            HostValue::Int(n as i64),
        ],
    );
}

#[test]
fn differential_adi() {
    let np = 8i64;
    let (_, on) = differential(
        listing("adi").unwrap(),
        "adi",
        4,
        &[2, 2],
        &[
            grid2(np, 0.0),
            grid2(np, 0.1),
            grid2(np, 0.0),
            HostValue::Int(np),
            HostValue::Real(50.0),
            HostValue::Int(2),
            HostValue::Real(1.0),
            HostValue::Real(1.0),
        ],
    );
    // The looped workload of Listings 7/8: the structural (name-based)
    // keys must carry tric's dynamic arrays across trips.
    assert!(
        on.report.total_schedule_replays > on.report.total_inspector_runs,
        "adi: {} replays vs {} runs",
        on.report.total_schedule_replays,
        on.report.total_inspector_runs
    );
}

#[test]
fn differential_redistribution_mid_loop() {
    // A distribute between trips must invalidate the cached schedule (the
    // distribution generation is part of the key), not replay stale
    // routes — differentially checked against the cache-off truth.
    let src = r#"
parsub swap(a, b, n, niter; procs)
  processors procs(p)
  real a(n), b(n) dist (block)
  do 1000 it = 1, niter
    doall 100 i = 1, n - 1 on owner(a(i))
      a(i) = a(i) + 0.5*b(i + 1) + 0.25*b(i)
100 continue
    if (it .eq. 2) then
      distribute b (cyclic)
    endif
1000 continue
end
"#;
    let n = 16usize;
    let (_, on) = differential(
        src,
        "swap",
        4,
        &[4],
        &[
            HostValue::Array {
                data: vec![0.0; n],
                bounds: vec![(1, n as i64)],
            },
            HostValue::Array {
                data: (0..n).map(|i| (i * i) as f64).collect(),
                bounds: vec![(1, n as i64)],
            },
            HostValue::Int(n as i64),
            HostValue::Int(5),
        ],
    );
    // Trips 1-2 share a schedule; trip 3 re-inspects under the new
    // distribution; trips 4-5 replay it.
    assert_eq!(on.report.total_inspector_runs, 4 * 2);
    assert_eq!(on.report.total_schedule_replays, 4 * 3);
}

#[test]
fn nested_doall_in_do_in_doall_team_call() {
    // Listing 7 shape: an outer doall whose body is a distributed
    // procedure call (team-call mode), whose callee runs a `do` loop
    // around an inner doall. Exercises doall_depth accounting and shows
    // caching is *correct* under nesting: the inner site replays across
    // the callee's `do` trips, per line, without result divergence.
    let src = r#"
parsub outer(u, r, np, niter; procs)
  processors procs(px, py)
  real u(0:np, 0:np), r(0:np, 0:np) dist (block, block)
  n = np - 1
  doall 100 i = 1, n on owner(r(i, *))
    call inner(u(i, *), r(i, *), np, niter; owner(r(i, *)))
100 continue
  return
end

parsub inner(x, g, np, niter; procs)
  processors procs(q)
  real x(0:np), g(0:np) dist (block)
  n = np - 1
  do 1000 it = 1, niter
    doall 200 j = 1, n on owner(x(j))
      x(j) = x(j) + 0.5*g(j + 1) - 0.125*x(j + 1)
200 continue
1000 continue
  return
end
"#;
    let np = 8i64;
    let niter = 4i64;
    let (_, on) = differential(
        src,
        "outer",
        4,
        &[2, 2],
        &[
            grid2(np, 1.0),
            grid2(np, 0.25),
            HostValue::Int(np),
            HostValue::Int(niter),
        ],
    );
    // Per line, the inner site inspects once and replays niter-1 times;
    // replays must dominate on every processor.
    assert!(
        on.report.total_schedule_replays > on.report.total_inspector_runs,
        "nested: {} replays vs {} runs",
        on.report.total_schedule_replays,
        on.report.total_inspector_runs
    );
    for p in &on.report.procs {
        assert!(
            p.stats.schedule_replays >= p.stats.inspector_runs,
            "proc {}: {} replays vs {} runs",
            p.rank,
            p.stats.schedule_replays,
            p.stats.inspector_runs
        );
    }
}

#[test]
fn same_site_under_intersecting_teams_stays_collective() {
    // Regression: the vote-participation gate must be per (site, team).
    // `line`'s doall site is first cached under the row slice {0, 1}
    // (procs 2, 3 never run those calls), then invoked under the column
    // slice {0, 2} — a team mixing a member that holds entries for the
    // site with one that does not. Gating the vote on the site id alone
    // desynchronized the collectives (f64 vote crossing a Vec<u64>
    // request round: type-mismatch panic / watchdog deadlock).
    let src = r#"
parsub mix(u, np, niter; procs)
  processors procs(px, py)
  real u(0:np, 0:np) dist (block, block)
  do 1000 it = 1, niter
    call line(u(1, *), np; owner(u(1, *)))
1000 continue
  call line(u(*, 1), np; owner(u(*, 1)))
  return
end

parsub line(x, np; procs)
  processors procs(q)
  real x(0:np) dist (block)
  n = np - 1
  doall 100 k = 1, n on owner(x(k))
    x(k) = x(k) + 0.5*x(k + 1)
100 continue
  return
end
"#;
    let np = 8i64;
    let (_, on) = differential(
        src,
        "mix",
        4,
        &[2, 2],
        &[grid2(np, 0.5), HostValue::Int(np), HostValue::Int(3)],
    );
    // The row-slice calls replay after the first trip; the column-slice
    // call must inspect fresh (its team has no entries), not vote.
    assert!(on.report.total_schedule_replays > 0);
}

#[test]
fn stale_read_hazard_is_a_pinned_hard_error() {
    // `ghost` sits in a branch the inspector never takes; the exchange
    // loop used to skip unresolvable names silently. It must be a hard
    // runtime error with a recognizable message.
    let src = r#"
parsub bad(a, n; procs)
  processors procs(p)
  real a(n) dist (block)
  doall 100 i = 1, n on owner(a(i))
    if (i .lt. 0) then
      a(i) = ghost(i)
    endif
100 continue
end
"#;
    for cache in [false, true] {
        let res = std::panic::catch_unwind(|| {
            run_source_with(
                cfg(2),
                src,
                "bad",
                &[2],
                &[
                    HostValue::Array {
                        data: vec![0.0; 8],
                        bounds: vec![(1, 8)],
                    },
                    HostValue::Int(8),
                ],
                RunOptions {
                    schedule_cache: cache,
                    ..RunOptions::default()
                },
            )
        });
        let err = match res {
            Ok(_) => panic!("cache={cache}: unbound body name must fail the run"),
            Err(e) => e,
        };
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "non-string panic".into());
        assert!(
            msg.contains("`ghost` is referenced in the loop body but has no binding"),
            "cache={cache}: unexpected message: {msg}"
        );
        // The error is a rendered diagnostic: stable code, source position,
        // and a caret underlining the offending expression.
        assert!(
            msg.contains("error[A001]"),
            "cache={cache}: missing code: {msg}"
        );
        assert!(
            msg.contains("--> line") && msg.contains("^"),
            "cache={cache}: missing span rendering: {msg}"
        );
    }
}
