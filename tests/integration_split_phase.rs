//! Differential suite for the split-phase exchange engine: every shipped
//! KF1 program runs with split-phase replay force-disabled (blocking
//! fused exchange) and force-enabled; the final arrays must be *bitwise*
//! identical and the exchange phases must move exactly the same value
//! words. Overlapping communication with interior computation is an
//! optimization of the virtual timeline, never of the answer — and on a
//! latency-bound machine it must actually shorten that timeline.

use std::time::Duration;

use kali::lang::{listing, run_source_with, HostValue, LangRun, RunOptions};
use kali::prelude::*;

fn cfg(p: usize) -> MachineConfig {
    Machine::build(
        BackendKind::from_env(),
        Topology::FullyConnected,
        CostModel::ipsc2(),
    )
    .procs(p)
    .watchdog(Duration::from_secs(60))
    .config()
}

/// Run `src` twice (split-phase off, on; schedule cache on in both) and
/// assert the differential invariants; returns (blocking, split).
fn differential(
    src: &str,
    entry: &str,
    p: usize,
    grid: &[usize],
    args: &[HostValue],
) -> (LangRun, LangRun) {
    let blocking = run_source_with(
        cfg(p),
        src,
        entry,
        grid,
        args,
        RunOptions {
            policy: ExecPolicy {
                split: false,
                ..ExecPolicy::default()
            },
            ..RunOptions::default()
        },
    )
    .unwrap_or_else(|e| panic!("{entry} (blocking): {e}"));
    let split = run_source_with(
        cfg(p),
        src,
        entry,
        grid,
        args,
        RunOptions {
            policy: ExecPolicy {
                split: true,
                ..ExecPolicy::default()
            },
            ..RunOptions::default()
        },
    )
    .unwrap_or_else(|e| panic!("{entry} (split-phase): {e}"));

    for ((name_b, a_b), (name_s, a_s)) in blocking.arrays.iter().zip(&split.arrays) {
        assert_eq!(name_b, name_s);
        assert_eq!(a_b.len(), a_s.len());
        for (k, (x, y)) in a_b.iter().zip(a_s).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{entry}: array {name_b} diverges at flat {k}: {x} vs {y}"
            );
        }
    }
    assert_eq!(
        blocking.report.total_exchange_words, split.report.total_exchange_words,
        "{entry}: split-phase must move exactly the blocking value words"
    );
    assert_eq!(
        blocking.report.total_schedule_replays, split.report.total_schedule_replays,
        "{entry}: the replay decisions must not depend on the exchange mode"
    );
    assert_eq!(
        blocking.report.overlap_hidden_seconds, 0.0,
        "{entry}: the blocking engine must hide nothing"
    );
    assert!(
        split.report.elapsed <= blocking.report.elapsed,
        "{entry}: split-phase must never lengthen the virtual timeline \
         ({} vs {})",
        split.report.elapsed,
        blocking.report.elapsed
    );
    (blocking, split)
}

fn grid2(np: i64, fill: f64) -> HostValue {
    let w = (np + 1) as usize;
    HostValue::Array {
        data: vec![fill; w * w],
        bounds: vec![(0, np), (0, np)],
    }
}

#[test]
fn differential_jacobi() {
    let np = 12i64;
    let (_, split) = differential(
        listing("jacobi").unwrap(),
        "jacobi",
        4,
        &[2, 2],
        &[
            grid2(np, 0.0),
            grid2(np, 0.03),
            HostValue::Int(np),
            HostValue::Int(6),
        ],
    );
    // The looped stencil replays and hides transit on every warm trip.
    assert!(split.report.total_schedule_replays > 0);
    if split.report.backend.virtual_time() {
        assert!(
            split.report.overlap_hidden_seconds > 0.0,
            "warm jacobi trips must overlap transit with interior iterations"
        );
    }
}

#[test]
fn differential_shift() {
    let n = 12usize;
    differential(
        listing("shift").unwrap(),
        "shift",
        4,
        &[4],
        &[
            HostValue::Array {
                data: (1..=n).map(|i| i as f64).collect(),
                bounds: vec![(1, n as i64)],
            },
            HostValue::Int(n as i64),
        ],
    );
}

#[test]
fn differential_tri() {
    let n = 32usize;
    let sys = kali::kernels::TriDiag::random_dd(n, 7);
    let x_true: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.31).cos()).collect();
    let f = sys.apply(&x_true);
    let arr = |data: Vec<f64>| HostValue::Array {
        data,
        bounds: vec![(1, n as i64)],
    };
    differential(
        listing("tri").unwrap(),
        "tri",
        4,
        &[4],
        &[
            arr(vec![0.0; n]),
            arr(f),
            arr(sys.b.clone()),
            arr(sys.a.clone()),
            arr(sys.c.clone()),
            HostValue::Int(n as i64),
        ],
    );
}

#[test]
fn differential_adi() {
    let np = 8i64;
    let (_, split) = differential(
        listing("adi").unwrap(),
        "adi",
        4,
        &[2, 2],
        &[
            grid2(np, 0.0),
            grid2(np, 0.1),
            grid2(np, 0.0),
            HostValue::Int(np),
            HostValue::Real(50.0),
            HostValue::Int(2),
            HostValue::Real(1.0),
            HostValue::Real(1.0),
        ],
    );
    assert!(split.report.total_schedule_replays > 0);
}

#[test]
fn differential_block_cyclic_neighbour_reads() {
    // cyclic(2) ownership: every block boundary is a remote read, so the
    // boundary partition is dense — the worst case for overlap, and the
    // best test that the engine still answers identically.
    let src = r#"
parsub bc(a, b, n, niter; procs)
  processors procs(p)
  real a(n), b(n) dist (cyclic(2))
  do 1000 it = 1, niter
    doall 100 i = 1, n - 1 on owner(a(i))
      a(i) = a(i) + 0.5*b(i + 1) + 0.125*a(i + 1)
100 continue
1000 continue
end
"#;
    let n = 16usize;
    let (_, split) = differential(
        src,
        "bc",
        4,
        &[4],
        &[
            HostValue::Array {
                data: vec![0.0; n],
                bounds: vec![(1, n as i64)],
            },
            HostValue::Array {
                data: (0..n).map(|i| (i * 3) as f64).collect(),
                bounds: vec![(1, n as i64)],
            },
            HostValue::Int(n as i64),
            HostValue::Int(4),
        ],
    );
    assert!(split.report.total_schedule_replays > 0);
}

#[test]
fn differential_redistribution_mid_loop() {
    // A distribute between trips invalidates the schedule; the fresh
    // (synchronous) invocation and later split-phase replays must still
    // agree bitwise with the fully blocking run.
    let src = r#"
parsub swap(a, b, n, niter; procs)
  processors procs(p)
  real a(n), b(n) dist (block)
  do 1000 it = 1, niter
    doall 100 i = 1, n - 1 on owner(a(i))
      a(i) = a(i) + 0.5*b(i + 1) + 0.25*b(i)
100 continue
    if (it .eq. 2) then
      distribute b (cyclic(3))
    endif
1000 continue
end
"#;
    let n = 16usize;
    differential(
        src,
        "swap",
        4,
        &[4],
        &[
            HostValue::Array {
                data: vec![0.0; n],
                bounds: vec![(1, n as i64)],
            },
            HostValue::Array {
                data: (0..n).map(|i| (i * i) as f64).collect(),
                bounds: vec![(1, n as i64)],
            },
            HostValue::Int(n as i64),
            HostValue::Int(5),
        ],
    );
}

/// Run `src` twice (optimistic voting off, on; cache and split-phase on
/// in both) and assert the piggybacked-vote invariants; returns
/// (pessimistic, optimistic).
fn optimistic_differential(
    src: &str,
    entry: &str,
    p: usize,
    grid: &[usize],
    args: &[HostValue],
) -> (LangRun, LangRun) {
    let pess = run_source_with(
        cfg(p),
        src,
        entry,
        grid,
        args,
        RunOptions {
            policy: ExecPolicy::pessimistic(),
            ..RunOptions::default()
        },
    )
    .unwrap_or_else(|e| panic!("{entry} (pessimistic): {e}"));
    let opt = run_source_with(cfg(p), src, entry, grid, args, RunOptions::default())
        .unwrap_or_else(|e| panic!("{entry} (optimistic): {e}"));
    for ((name_p, a_p), (name_o, a_o)) in pess.arrays.iter().zip(&opt.arrays) {
        assert_eq!(name_p, name_o);
        for (k, (x, y)) in a_p.iter().zip(a_o).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{entry}: array {name_p} diverges at flat {k}: {x} vs {y}"
            );
        }
    }
    assert_eq!(
        pess.report.total_exchange_words, opt.report.total_exchange_words,
        "{entry}: the piggybacked vote must not change the value traffic"
    );
    assert_eq!(
        pess.report.total_schedule_replays, opt.report.total_schedule_replays,
        "{entry}: the consensus verdicts must not depend on the protocol"
    );
    assert_eq!(
        pess.report.total_optimistic_hits, 0,
        "{entry}: the pessimistic baseline must not count optimistic hits"
    );
    assert_eq!(
        opt.report.total_optimistic_hits, opt.report.total_schedule_replays,
        "{entry}: every optimistic replay must be served by the piggybacked vote"
    );
    assert!(
        opt.report.elapsed <= pess.report.elapsed,
        "{entry}: dropping the vote round must never lengthen the timeline \
         ({} vs {})",
        opt.report.elapsed,
        pess.report.elapsed
    );
    (pess, opt)
}

#[test]
fn no_unexpected_rollbacks_on_the_kf1_listings() {
    // The rollback counts of the four shipped listings are pinned
    // exactly; CI fails here on any *unexpected* rollback. None of the
    // listings redistributes mid-loop, so every consensus must be won by
    // the piggybacked header and nothing may roll back. ADI is the
    // interesting pin: its line sweeps fix a different row/column index
    // each doall iteration, and a key that recorded the absolute index
    // would miss the cache on every line. Cache keys instead normalize
    // fixed view coordinates to their *owner* grid coordinate — constant
    // across a row/column team — and replay translates the stored flat
    // indices to the current line's origin, so ADI's formerly guaranteed
    // lost votes (15 per processor, 60 on 4 procs) are now cache hits.
    // `optimistic_differential` pins that the verdicts, replays, traffic
    // and answers agree between the protocols.
    let np = 8i64;
    let n = 16usize;
    let sys = kali::kernels::TriDiag::random_dd(n, 3);
    let x_true: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.29).sin()).collect();
    let f = sys.apply(&x_true);
    let arr1 = |data: Vec<f64>| HostValue::Array {
        data,
        bounds: vec![(1, n as i64)],
    };
    let cases: Vec<(&str, usize, Vec<usize>, Vec<HostValue>, u64)> = vec![
        (
            "jacobi",
            4,
            vec![2, 2],
            vec![
                grid2(np, 0.0),
                grid2(np, 0.02),
                HostValue::Int(np),
                HostValue::Int(5),
            ],
            0,
        ),
        (
            "shift",
            4,
            vec![4],
            vec![
                arr1((1..=n).map(|i| i as f64).collect()),
                HostValue::Int(n as i64),
            ],
            0,
        ),
        (
            "tri",
            4,
            vec![4],
            vec![
                arr1(vec![0.0; n]),
                arr1(f),
                arr1(sys.b.clone()),
                arr1(sys.a.clone()),
                arr1(sys.c.clone()),
                HostValue::Int(n as i64),
            ],
            0,
        ),
        (
            "adi",
            4,
            vec![2, 2],
            vec![
                grid2(np, 0.0),
                grid2(np, 0.1),
                grid2(np, 0.0),
                HostValue::Int(np),
                HostValue::Real(50.0),
                HostValue::Int(2),
                HostValue::Real(1.0),
                HostValue::Real(1.0),
            ],
            0,
        ),
    ];
    for (entry, p, grid, args, expected_rollbacks) in cases {
        let (pess, opt) = optimistic_differential(listing(entry).unwrap(), entry, p, &grid, &args);
        assert_eq!(
            opt.report.total_rollbacks, expected_rollbacks,
            "{entry}: unexpected rollback count"
        );
        assert_eq!(
            pess.report.total_inspector_runs, opt.report.total_inspector_runs,
            "{entry}: both protocols must inspect fresh on exactly the same trips"
        );
    }
}

#[test]
fn redistribute_mid_loop_rolls_back_exactly_once() {
    // A distribute between trips invalidates every member's key: the next
    // trip's piggybacked votes all read "no hit", the posted headers are
    // discarded, and the trip re-inspects — exactly one rollback per
    // processor, never a stale read (pinned bitwise against the
    // pessimistic-vote truth by `optimistic_differential`).
    let src = r#"
parsub swap(a, b, n, niter; procs)
  processors procs(p)
  real a(n), b(n) dist (block)
  do 1000 it = 1, niter
    doall 100 i = 1, n - 1 on owner(a(i))
      a(i) = a(i) + 0.5*b(i + 1) + 0.25*b(i)
100 continue
    if (it .eq. 2) then
      distribute b (cyclic(3))
    endif
1000 continue
end
"#;
    let n = 16usize;
    let niter = 5i64;
    let p = 4usize;
    let (_, opt) = optimistic_differential(
        src,
        "swap",
        p,
        &[p],
        &[
            HostValue::Array {
                data: vec![0.0; n],
                bounds: vec![(1, n as i64)],
            },
            HostValue::Array {
                data: (0..n).map(|i| (i * i) as f64).collect(),
                bounds: vec![(1, n as i64)],
            },
            HostValue::Int(n as i64),
            HostValue::Int(niter),
        ],
    );
    // Trip 1 is cold, trip 2 hits, trip 3 rolls back under the new
    // distribution, trips 4-5 hit again — per processor.
    assert_eq!(opt.report.total_rollbacks, p as u64);
    assert_eq!(
        opt.report.total_optimistic_hits,
        p as u64 * (niter as u64 - 2)
    );
    for proc in &opt.report.procs {
        assert_eq!(proc.stats.rollbacks, 1, "proc {}", proc.rank);
    }
}

#[test]
fn split_phase_speedup_on_latency_bound_trips() {
    // End-to-end latency check on a warm loop: with iPSC/2 costs the
    // split-phase engine must be measurably faster, not merely no slower.
    let np = 16i64;
    let (blocking, split) = differential(
        listing("jacobi").unwrap(),
        "jacobi",
        4,
        &[2, 2],
        &[
            grid2(np, 0.0),
            grid2(np, 0.02),
            HostValue::Int(np),
            HostValue::Int(8),
        ],
    );
    if !blocking.report.backend.virtual_time() {
        return; // the latency win is a property of the simulated cost model
    }
    let speedup = blocking.report.elapsed / split.report.elapsed;
    assert!(
        speedup > 1.05,
        "expected a real win on 8 warm trips, got {speedup:.3}x"
    );
}
