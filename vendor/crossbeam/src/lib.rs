//! Minimal, std-only stand-in for the subset of `crossbeam` this workspace
//! uses: unbounded MPSC channels with timeout-aware receives.
//!
//! The build environment has no route to a crates registry, so the real
//! crate cannot be fetched; `std::sync::mpsc` provides the same semantics
//! for the machine simulator's needs (unbounded send, per-channel FIFO,
//! `recv_timeout`, disconnect detection). Replace this with the real
//! `crossbeam` once a registry is reachable — the API below is call-for-call
//! compatible with what `kali-machine` imports.

pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvTimeoutError, SendError, Sender};

    /// An unbounded channel, as `crossbeam::channel::unbounded`.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv_timeout(Duration::from_secs(1)).unwrap(), i);
        }
    }

    #[test]
    fn timeout_then_disconnect() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }
}
