//! Minimal, std-only stand-in for the subset of `criterion` this workspace
//! uses: `Criterion` with benchmark groups, `bench_function` /
//! `bench_with_input`, `BenchmarkId`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! The build environment has no route to a crates registry, so the real
//! crate cannot be fetched. Semantics:
//!
//! * normal runs time each benchmark over a fixed number of iterations
//!   (`sample_size`, default 10) and print the mean wall time;
//! * `cargo bench -- --test` (the mode CI uses) runs every benchmark
//!   body exactly once so suites cannot rot without failing the pipeline;
//! * unknown harness flags are ignored, as the real criterion does.
//!
//! Swap this for the real `criterion` once a registry is reachable — the
//! API below is call-for-call compatible with what the `kali-bench`
//! benches import.

use std::time::Instant;

pub use std::hint::black_box;

/// Benchmark identifier: a function name plus a parameter rendering, as
/// `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    /// `--test` mode: run the body once, skip timing.
    test_mode: bool,
    iters: u64,
    /// Mean seconds per iteration of the last `iter` call.
    mean_s: f64,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            return;
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.mean_s = start.elapsed().as_secs_f64() / self.iters as f64;
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'c> {
    criterion: &'c Criterion,
    group: String,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.group, id);
        self.criterion.run_one(&name, self.sample_size, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.group, id);
        self.criterion.run_one(&name, self.sample_size, |b| {
            f(b, input);
        });
        self
    }

    pub fn finish(&mut self) {}
}

/// The harness entry object, as `criterion::Criterion`.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // The real harness accepts (and mostly ignores) a trail of CLI
        // flags; honour the one CI depends on and skip the rest.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            group: name.into(),
            sample_size: 10,
        }
    }

    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.to_string();
        self.run_one(&name, 10, f);
        self
    }

    fn run_one<F>(&self, name: &str, samples: u64, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            test_mode: self.test_mode,
            iters: samples,
            mean_s: 0.0,
        };
        f(&mut b);
        if self.test_mode {
            println!("test {name} ... ok");
        } else {
            println!("{name}: {:.6e} s/iter ({samples} iters)", b.mean_s);
        }
    }

    /// Called by `criterion_main!` after all groups ran.
    pub fn final_summary(&self) {}
}

/// Declare a group of benchmark functions, as `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

/// Declare the benchmark binary's `main`, as `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_body_and_reports_mean() {
        let mut b = Bencher {
            test_mode: false,
            iters: 3,
            mean_s: 0.0,
        };
        let mut n = 0u64;
        b.iter(|| n += 1);
        assert_eq!(n, 3);
        assert!(b.mean_s >= 0.0);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut b = Bencher {
            test_mode: true,
            iters: 10,
            mean_s: 0.0,
        };
        let mut n = 0u64;
        b.iter(|| n += 1);
        assert_eq!(n, 1);
    }

    #[test]
    fn benchmark_id_renders_name_and_parameter() {
        assert_eq!(BenchmarkId::new("solve", 64).to_string(), "solve/64");
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion { test_mode: true };
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(5);
            g.bench_function("a", |b| b.iter(|| ran += 1));
            g.finish();
        }
        assert_eq!(ran, 1);
    }
}
