//! Minimal, std-only stand-in for the subset of `proptest` this workspace
//! uses: the `proptest!` macro over range and `prop::collection::vec`
//! strategies, `prop_assert!`/`prop_assert_eq!`, and `ProptestConfig`.
//!
//! The build environment has no route to a crates registry, so the real
//! crate cannot be fetched. Property bodies are kept source-compatible:
//! swap in the real proptest later and the tests compile unchanged. Unlike
//! real proptest there is no shrinking — failures report the sampled values
//! via the panic message instead.
//!
//! Sampling is deterministic: the RNG is seeded from the property's name,
//! so every run explores the same cases (matching this repo's "deterministic
//! simulator, deterministic tests" policy).

use std::ops::Range;

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic xorshift64* generator seeded from the property name.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name gives a stable, non-zero seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h | 1 }
    }

    pub fn next_u64(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A value generator. Real proptest strategies also shrink; this shim only
/// samples.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                // Widen through i128 so spans over half the type's domain
                // (e.g. -100i8..100) don't sign-extend out of range.
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        self.start + rng.next_f64() as f32 * (self.end - self.start)
    }
}

/// Namespaced strategy constructors, mirroring `proptest::prop`.
pub mod prop {
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::Range;

        /// A `Vec` whose length is drawn from `size` and whose elements are
        /// drawn from `elem`.
        pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, size }
        }

        pub struct VecStrategy<S> {
            elem: S,
            size: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = self.size.sample(rng);
                (0..len).map(|_| self.elem.sample(rng)).collect()
            }
        }
    }
}

/// Everything a `proptest!` call site needs in scope.
pub mod prelude {
    pub use crate::{prop, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Assert inside a property; panics (no shrinking) with the given message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Define property tests: each `#[test] fn name(arg in strategy, ...)` body
/// runs `cases` times with freshly sampled arguments.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $($(#[$meta:meta])+ fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..cfg.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = crate::TestRng::deterministic("bounds");
        for _ in 0..1000 {
            let u = (3usize..17).sample(&mut rng);
            assert!((3..17).contains(&u));
            let s = (-5i64..5).sample(&mut rng);
            assert!((-5..5).contains(&s));
            let f = (-2.0f64..3.0).sample(&mut rng);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = crate::TestRng::deterministic("vecs");
        let strat = prop::collection::vec(0.0f64..1.0, 2..6);
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    #[test]
    fn wide_signed_ranges_stay_in_bounds() {
        // A span wider than half the type's domain must not sign-extend.
        let mut rng = crate::TestRng::deterministic("wide");
        for _ in 0..2000 {
            let v = (-100i8..100).sample(&mut rng);
            assert!((-100..100).contains(&v), "sampled {v}");
            let w = (i64::MIN / 2..i64::MAX / 2).sample(&mut rng);
            assert!((i64::MIN / 2..i64::MAX / 2).contains(&w));
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::deterministic("same");
        let mut b = crate::TestRng::deterministic("same");
        let mut c = crate::TestRng::deterministic("other");
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_samples_all_args(
            n in 1usize..50,
            x in -1.0f64..1.0,
        ) {
            prop_assert!((1..50).contains(&n));
            prop_assert!((-1.0..1.0).contains(&x), "x = {}", x);
            prop_assert_eq!(n, n);
        }
    }
}
